package tcpeng

import (
	"bytes"
	"testing"

	"neat/internal/proto"
	"neat/internal/sim"
)

func cookieCfg(watermark int) Config {
	cfg := defCfg()
	cfg.Guard.SynCookies = true
	cfg.Guard.SynCookieWatermark = watermark
	return cfg
}

func TestSynCookieStatelessHandshake(t *testing.T) {
	h := newHarness(50)
	h.build(defCfg(), cookieCfg(-1)) // every SYN answered with a cookie
	l, _ := h.b.engine.Listen(proto.Addr{}, 80, 64)

	cli, srv := h.connectPair(80)
	if srv == nil {
		t.Fatal("cookie handshake did not establish")
	}
	st := h.b.engine.Stats()
	if st.SynCookiesSent != 1 || st.SynCookiesValidated != 1 || st.SynCookiesRejected != 0 {
		t.Fatalf("cookie stats: %+v", st)
	}
	// The handshake never created an embryonic PCB.
	if l.embryonic != 0 || l.embHead != nil {
		t.Fatalf("embryonic state leaked: %d", l.embryonic)
	}
	if srv.State() != StateEstablished {
		t.Fatalf("server conn %v", srv.State())
	}
	// Stateless handshakes negotiate no window scaling in either direction.
	if srv.rcv.wndShift != 0 || srv.snd.wndShift != 0 {
		t.Fatalf("cookie conn kept window scaling: rcv=%d snd=%d",
			srv.rcv.wndShift, srv.snd.wndShift)
	}
	if cli.snd.wndShift != 0 {
		t.Fatalf("client scaled against a cookie SYN|ACK: %d", cli.snd.wndShift)
	}
	if srv.MSS() != 1460 {
		t.Fatalf("cookie MSS quantization: %d", srv.MSS())
	}

	// Data flows both ways on the materialized connection.
	cli.Send([]byte("ping"))
	h.runUntil(func() bool { return bytes.Equal(h.b.recvData[srv], []byte("ping")) }, sim.Second)
	if !bytes.Equal(h.b.recvData[srv], []byte("ping")) {
		t.Fatalf("client->server: %q", h.b.recvData[srv])
	}
	srv.Send([]byte("pong"))
	h.runUntil(func() bool { return bytes.Equal(h.a.recvData[cli], []byte("pong")) }, sim.Second)
	if !bytes.Equal(h.a.recvData[cli], []byte("pong")) {
		t.Fatalf("server->client: %q", h.a.recvData[cli])
	}
}

func TestSynCookieRejectsForgedAck(t *testing.T) {
	h := newHarness(51)
	h.build(defCfg(), cookieCfg(-1))
	h.b.engine.Listen(proto.Addr{}, 80, 64)

	// An attacker fires a bare ACK with a guessed cookie at the listener.
	var hdr proto.TCPHeader
	hdr.SrcPort, hdr.DstPort = 7777, 80
	hdr.Flags = proto.TCPAck
	hdr.Seq = 1000
	hdr.Ack = 0xdeadbeef
	raw := proto.BuildTCP(
		proto.EthernetHeader{Type: proto.EtherTypeIPv4},
		proto.IPv4Header{TTL: 64, Src: h.a.addr, Dst: h.b.addr},
		hdr, nil)
	f, err := proto.DecodeFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	before := h.b.segsSent
	h.b.engine.Input(f)
	st := h.b.engine.Stats()
	if st.SynCookiesRejected != 1 {
		t.Fatalf("rejection not counted: %+v", st)
	}
	if h.b.engine.NumConns() != 0 {
		t.Fatal("forged ACK materialized a PCB")
	}
	// Swallowed silently: no RST amplification back at the spoofed source.
	if st.ResetsOut != 0 || h.b.segsSent != before {
		t.Fatalf("forged ACK answered: resets=%d", st.ResetsOut)
	}
}

func TestSynCookieEngagesAboveWatermark(t *testing.T) {
	h := newHarness(52)
	cfg := cookieCfg(2)
	h.build(defCfg(), cfg)
	l, _ := h.b.engine.Listen(proto.Addr{}, 80, 64)

	// Two handshakes held half-open by dropping their completing ACKs
	// (client bare ACKs A->B) fill the embryonic table to the watermark.
	h.Drop = func(from *fakeEnv, f *proto.Frame) bool {
		return from == h.a && f.TCP.Flags == proto.TCPAck && len(f.Payload) == 0
	}
	h.a.engine.Connect(h.b.addr, 80)
	h.a.engine.Connect(h.b.addr, 80)
	h.run(h.now + 10*sim.Millisecond)
	if l.embryonic != 2 {
		t.Fatalf("embryonic below watermark: %d", l.embryonic)
	}
	if h.b.engine.Stats().SynCookiesSent != 0 {
		t.Fatal("cookies engaged below the watermark")
	}

	// The third SYN rides the cookie path and still establishes.
	h.Drop = nil
	cli, srv := h.connectPair(80)
	if srv == nil || cli.State() != StateEstablished {
		t.Fatal("cookie handshake above watermark failed")
	}
	st := h.b.engine.Stats()
	if st.SynCookiesSent == 0 || st.SynCookiesValidated == 0 {
		t.Fatalf("third SYN did not use a cookie: %+v", st)
	}
	if l.embryonic != 2 {
		t.Fatalf("cookie handshake touched the embryonic table: %d", l.embryonic)
	}
}

func TestPCBPoolRecyclesAcrossConnLifetimes(t *testing.T) {
	cfg := defCfg()
	cfg.TimeWait = 10 * sim.Millisecond
	h := newHarness(53)
	h.build(cfg, cfg)
	h.b.engine.Listen(proto.Addr{}, 80, 16)

	var firstSrv *Conn
	for i := 0; i < 5; i++ {
		cli, srv := h.connectPair(80)
		if srv == nil {
			t.Fatalf("round %d: no connection", i)
		}
		if i == 0 {
			firstSrv = srv
		} else if srv != firstSrv {
			// The server-side PCB struct should be recycled round-robin
			// through the free list (one live server conn at a time).
			t.Fatalf("round %d: PCB not recycled (got %p want %p)", i, srv, firstSrv)
		}
		cli.Send([]byte("payload"))
		h.runUntil(func() bool { return len(h.b.recvData[srv]) >= 7 }, sim.Second)
		cli.Close()
		srv.Close()
		// Run past TIME_WAIT so both PCBs are removed and recycled.
		h.run(h.now + 200*sim.Millisecond)
		if n := h.b.engine.NumConns(); n != 0 {
			t.Fatalf("round %d: %d conns still live", i, n)
		}
		h.b.recvData[srv] = nil
	}
	ps := h.b.engine.PoolStats()
	if ps.Reused < 4 {
		t.Fatalf("pool reuse not observed: %+v", ps)
	}
	if ps.FreeConns == 0 || ps.FreeBufs == 0 {
		t.Fatalf("free lists empty after teardown: %+v", ps)
	}
}

func TestPoolStatsDistinguishesHotAndFull(t *testing.T) {
	h := newHarness(54)
	h.build(defCfg(), defCfg())
	h.b.engine.Listen(proto.Addr{}, 80, 16)
	cli1, srv1 := h.connectPair(80)
	cli2, _ := h.connectPair(80)
	_ = cli2
	// Conn 1 buffers data (full); conn 2 never does (hot/compact).
	cli1.Send([]byte("data"))
	h.runUntil(func() bool { return len(h.b.recvData[srv1]) >= 4 }, sim.Second)
	ps := h.b.engine.PoolStats()
	// srv1 attached buffers; srv2 may or may not have, depending only on
	// whether it buffered bytes — it did not.
	if ps.LiveFull < 1 || ps.LiveHot < 1 {
		t.Fatalf("pool occupancy: %+v", ps)
	}
	if ps.LiveFull+ps.LiveHot != h.b.engine.NumConns() {
		t.Fatalf("occupancy does not sum: %+v vs %d", ps, h.b.engine.NumConns())
	}
}
