package tcpeng

import (
	"neat/internal/proto"
	"neat/internal/sim"
)

// SYN-cookie handshake offload (GuardConfig.SynCookies).
//
// Above the listener's embryonic watermark, a SYN is answered statelessly:
// the SYN|ACK's initial sequence number is a cookie binding the 4-tuple, a
// coarse time slot and the negotiated MSS under an engine secret. No PCB is
// created — a SYN flood therefore never touches the PCB table — and the
// connection materializes, directly ESTABLISHED, only when the completing
// ACK returns a cookie that verifies. The cost, exactly as in real stacks:
// cookie connections lose window scaling (a stateless handshake cannot
// remember the offer) and the MSS is quantized to a small table.
//
// Cookie layout (32 bits): [31:29] time slot, [28:26] MSS table index,
// [25:0] truncated keyed hash over (secret, 4-tuple, slot, mss index).

const (
	// cookieSlotShift converts sim time to ~69 s validity slots (2^36 ns);
	// a cookie is accepted in the slot it was minted and the next one.
	cookieSlotShift = 36
	cookieHashBits  = 26
	cookieHashMask  = 1<<cookieHashBits - 1
)

// cookieMSSTable quantizes the peer's MSS offer (largest entry <= offer).
var cookieMSSTable = [4]int{536, 1220, 1440, 1460}

func cookieMSSIndex(mss int) uint32 {
	idx := 0
	for i, v := range cookieMSSTable {
		if v <= mss {
			idx = i
		}
	}
	return uint32(idx)
}

// cookieKey returns the engine secret, drawing it from the Env RNG on first
// use. Lazy on purpose: an engine that never mints a cookie consumes an RNG
// stream identical to a build without cookies at all, which the repository's
// md5-pinned determinism oracles rely on.
func (e *Engine) cookieKey() uint32 {
	if !e.cookieSecretSet {
		e.cookieSecret = e.env.RandUint32()
		e.cookieSecretSet = true
	}
	return e.cookieSecret
}

// cookieHash is a keyed 26-bit mix over the 4-tuple, slot and MSS index.
// splitmix64-style finalization — not cryptographic, but neither is the
// simulated adversary.
func cookieHash(secret uint32, k connKey, slot, mssIdx uint32) uint32 {
	h := uint64(secret)<<32 | uint64(slot)<<3 | uint64(mssIdx)
	mix := func(v uint64) {
		h ^= v
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	mix(uint64(addrU32(k.localAddr))<<16 | uint64(k.localPort))
	mix(uint64(addrU32(k.remoteAddr))<<16 | uint64(k.remotePort))
	mix(h >> 17)
	return uint32(h) & cookieHashMask
}

func addrU32(a proto.Addr) uint32 {
	return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
}

// encodeCookie mints the ISN for a stateless SYN|ACK.
func (e *Engine) encodeCookie(k connKey, peerMSS int, now sim.Time) uint32 {
	slot := uint32(now>>cookieSlotShift) & 7
	idx := cookieMSSIndex(peerMSS)
	return slot<<29 | idx<<26 | cookieHash(e.cookieKey(), k, slot, idx)
}

// checkCookie validates a cookie from a completing ACK (ack-1) and returns
// the MSS it encodes. Cookies from the current and previous time slot are
// accepted.
func (e *Engine) checkCookie(k connKey, now sim.Time, cookie uint32) (mss int, ok bool) {
	slot := cookie >> 29
	idx := (cookie >> 26) & 7
	if int(idx) >= len(cookieMSSTable) {
		return 0, false
	}
	cur := uint32(now >> cookieSlotShift)
	if cur&7 != slot && (cur-1)&7 != slot {
		return 0, false
	}
	if cookieHash(e.cookieKey(), k, slot, idx) != cookie&cookieHashMask {
		return 0, false
	}
	return cookieMSSTable[idx], true
}

// sendSynCookie answers a SYN with a stateless cookie SYN|ACK.
func (e *Engine) sendSynCookie(k connKey, h *proto.TCPHeader) {
	peerMSS := e.cfg.MSS
	if h.Opts.MSS != 0 && int(h.Opts.MSS) < peerMSS {
		peerMSS = int(h.Opts.MSS)
	}
	e.stats.SynCookiesSent++
	var hdr proto.TCPHeader
	hdr.SrcPort, hdr.DstPort = k.localPort, k.remotePort
	hdr.Flags = proto.TCPSyn | proto.TCPAck
	hdr.Seq = e.encodeCookie(k, peerMSS, e.env.Now())
	hdr.Ack = h.Seq + 1
	hdr.Opts.MSS = uint16(e.cfg.MSS)
	// No window-scale offer: there is no PCB to remember it in.
	w := e.cfg.RecvBuf
	if w > 0xffff {
		w = 0xffff
	}
	hdr.Window = uint16(w)
	e.stats.SegsOut++
	e.env.SendSegment(nil, OutSegment{
		Src: k.localAddr, Dst: k.remoteAddr, Hdr: hdr, MSS: e.cfg.MSS,
	})
}

// completeCookie materializes a connection from an ACK that carries a valid
// cookie. Returns true when the segment was consumed (valid cookie, or a
// validated-but-capped one); false lets the caller fall through to the
// closed-port path. Invalid cookies are swallowed silently — answering a
// flood of forged ACKs with RSTs would just be amplification.
func (e *Engine) completeCookie(l *Listener, k connKey, h *proto.TCPHeader, payload []byte) bool {
	mss, ok := e.checkCookie(k, e.env.Now(), h.Ack-1)
	if !ok {
		e.stats.SynCookiesRejected++
		return true
	}
	g := e.cfg.Guard
	if g.MaxConnsPerSource > 0 && e.perSource[k.remoteAddr] >= g.MaxConnsPerSource {
		e.stats.SrcCapped++
		return true
	}
	if len(l.acceptQ) >= l.backlog {
		e.stats.AcceptQueueOverflow++
		return true
	}
	e.stats.SynCookiesValidated++
	c := e.newConn(k)
	c.Listener = l
	e.perSource[k.remoteAddr]++
	c.lastActivity = e.env.Now()
	cookie := h.Ack - 1
	c.iss = cookie
	c.irs = h.Seq - 1
	c.rcv.nxt = h.Seq
	c.snd.una = h.Ack
	c.snd.nxt = h.Ack
	c.mss = mss
	// Neither direction scales: the SYN|ACK offered no window scale.
	c.rcv.wndShift, c.snd.wndShift = 0, 0
	c.snd.cwnd = uint32(e.cfg.InitialCwndMSS * c.mss)
	c.snd.wnd = uint32(h.Window)
	c.rto = e.cfg.InitialRTO
	c.state = StateEstablished
	e.stats.EstablishedTransitons++
	e.stats.AcceptedConns++
	l.acceptQ = append(l.acceptQ, c)
	e.env.Accepted(c)
	e.armGuard(c)
	// Data or FIN riding the completing ACK goes through the normal path.
	if len(payload) > 0 || h.Flags&proto.TCPFin != 0 {
		c.input(h, payload)
	}
	return true
}
