// Package tcpeng implements the TCP protocol engine used by every stack in
// this repository: NEaT's single-component replicas, the TCP processes of
// multi-component replicas (§3.7), the load generator's client stack, and
// the monolithic Linux-model baseline.
//
// The engine is pure protocol: it owns protocol control blocks, the RFC 793
// state machine, retransmission with RFC 6298 timing, Reno congestion
// control (slow start, congestion avoidance, fast retransmit/recovery),
// delayed ACKs, zero-window probing and TIME_WAIT. Everything outside the
// protocol — time, timers, segment transmission, upcalls to sockets — is
// reached through the Env interface, so the engine runs identically inside
// a simulated process or a plain unit test.
//
// This is deliberately the paper's most state-heavy component: when a NEaT
// replica crashes, exactly the state held here is lost (§3.6), which is why
// the fault-injection experiment of Table 3 distinguishes TCP faults from
// faults in the stateless components.
package tcpeng

import (
	"errors"
	"fmt"

	"neat/internal/proto"
	"neat/internal/sim"
)

// State is a TCP connection state (RFC 793).
type State int

// TCP states.
const (
	StateClosed State = iota
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateClosing
	StateLastAck
	StateTimeWait
)

var stateNames = [...]string{
	"Closed", "SynSent", "SynRcvd", "Established", "FinWait1",
	"FinWait2", "CloseWait", "Closing", "LastAck", "TimeWait",
}

// String names the state.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// TimerKind identifies one of a connection's timers.
type TimerKind int

// Connection timers.
const (
	TimerRexmit TimerKind = iota
	TimerPersist
	TimerDelAck
	TimerTimeWait
	TimerGuard
	NumTimers
)

// ConnTimer is the intrusive timer node embedded in a Conn, one per
// TimerKind. It owns a reusable simulator timer and identifies itself, so
// the Env can arm it with `Retimer(&t.Timer, d, t)` — the node is its own
// fire message and the arm/stop path allocates nothing. The embedded
// sim.Timer generation survives PCB recycling, which is what keeps a fire
// from a previous incarnation of a pooled Conn stale.
type ConnTimer struct {
	sim.Timer
	C    *Conn
	Kind TimerKind
}

// OutSegment is a TCP segment handed to the IP layer for transmission.
// When TSO is set the payload may exceed MSS and the NIC performs the
// segmentation (§4); MSS tells the NIC where to cut.
type OutSegment struct {
	Src, Dst proto.Addr
	Hdr      proto.TCPHeader
	Payload  []byte
	TSO      bool
	MSS      int
}

// Env is the world as seen by the engine. The stack component that embeds
// the engine implements it: timers map to simulator timers, SendSegment
// feeds the IP layer, and the upcalls become socket events.
type Env interface {
	// Now returns the current time.
	Now() sim.Time
	// SendSegment transmits one segment (or TSO super-segment).
	SendSegment(c *Conn, seg OutSegment)
	// ArmTimer (re)schedules timer k of c to fire after d; StopTimer
	// cancels it. The owner must call Engine.OnTimer when it fires.
	ArmTimer(c *Conn, k TimerKind, d sim.Time)
	StopTimer(c *Conn, k TimerKind)
	// Accepted reports a connection that completed the passive handshake
	// and joined its listener's accept queue.
	Accepted(c *Conn)
	// Connected reports completion of an active (client) handshake.
	Connected(c *Conn)
	// DataReadable reports new in-order data in the receive buffer.
	DataReadable(c *Conn)
	// SendSpace reports freed send-buffer space after ACKs.
	SendSpace(c *Conn)
	// ConnClosed reports the connection leaving app-visible life (FIN
	// completion or RST); reset is true for aborts.
	ConnClosed(c *Conn, reset bool)
	// ConnRemoved reports the PCB being deleted from the engine (after
	// TIME_WAIT, or immediately on RST). NEaT's manager hooks this to
	// uninstall NIC filters and drive lazy termination (§3.4).
	ConnRemoved(c *Conn)
	// RandUint32 supplies initial sequence number entropy.
	RandUint32() uint32
}

// Config parameterizes an engine.
type Config struct {
	MSS         int      // our MSS (default 1460)
	RecvBuf     int      // receive buffer bytes (default 256 KiB)
	SendBuf     int      // send buffer bytes (default 256 KiB)
	TSO         bool     // hand >MSS payloads to the NIC
	TSOMax      int      // max TSO super-segment (default 64 KiB)
	NoDelay     bool     // disable Nagle (default true: the paper's HTTP workload)
	InitialRTO  sim.Time // default 50 ms
	MinRTO      sim.Time // default 5 ms (LAN-scaled; Linux uses 200 ms)
	MaxRTO      sim.Time // default 2 s
	DelAckDelay sim.Time // default 1 ms
	TimeWait    sim.Time // 2*MSL stand-in; default 250 ms (a control-plane
	// tunable per §4)
	PersistInterval sim.Time // zero-window probe interval, default 100 ms
	InitialCwndMSS  int      // initial congestion window in MSS (default 10)

	// MaxRetries caps consecutive RTO retransmissions of the same data
	// before the connection is declared dead (Linux's tcp_retries2;
	// default 10).
	MaxRetries int

	// EphemeralLo/Hi bound the local port range for active opens. NEaT
	// partitions the ephemeral space across replicas so that two replicas
	// sharing the host IP can never allocate colliding 4-tuples — the
	// port-space analogue of the paper's state partitioning. Defaults:
	// 32768..65535.
	EphemeralLo, EphemeralHi uint16

	// Guard configures the per-replica resource guards against hostile
	// peers. The zero value disables every guard, preserving historical
	// behaviour exactly.
	Guard GuardConfig
}

// GuardConfig bounds the resources a remote peer can pin inside one
// replica. Each guard is independent and disabled at its zero value, so a
// replica without guards behaves exactly as before; a replica with guards
// degrades a hostile source deterministically instead of letting it starve
// the partition.
type GuardConfig struct {
	// SynBacklog caps embryonic (SYN_RCVD) connections per listener. When
	// a SYN arrives at a full guard backlog the OLDEST embryonic
	// connection is shed (silently — its source is likely spoofed) to
	// admit the new one, so a SYN flood recycles its own slots instead of
	// wedging the listener. 0 disables (the plain listener backlog then
	// drops the newest SYN, the historical behaviour).
	SynBacklog int
	// HeaderDeadline reaps an accepted server-side connection that has
	// delivered fewer than HeaderMinBytes payload bytes this long after
	// establishment — the slowloris (byte-at-a-time header) defense. A
	// cumulative byte floor, not a progress check: trickling one byte per
	// tick does not help the attacker. 0 disables.
	HeaderDeadline sim.Time
	// HeaderMinBytes is the cumulative payload floor for HeaderDeadline
	// (default 64 when a deadline is set).
	HeaderMinBytes int
	// IdleDeadline reaps a server-side connection with no inbound
	// activity (no segment at all, ACKs included) for this long. 0
	// disables.
	IdleDeadline sim.Time
	// MaxConnsPerSource caps server-side connections (embryonic and
	// established) per remote address; SYNs beyond the cap are dropped.
	// 0 disables.
	MaxConnsPerSource int
	// SynCookies switches a listener to stateless SYN-cookie handshakes
	// once its embryonic count reaches SynCookieWatermark: the SYN|ACK's
	// ISN encodes a verifiable cookie, no PCB is created, and the
	// connection materializes (directly ESTABLISHED) only when the
	// completing ACK validates. A SYN flood above the watermark therefore
	// never touches the PCB table. Cookie connections lose window scaling
	// and quantize the MSS, exactly like real stacks.
	SynCookies bool
	// SynCookieWatermark is the embryonic count at which cookies engage
	// (default: SynBacklog when set, else 64). Negative values force
	// cookies for every SYN (full handshake offload).
	SynCookieWatermark int
}

// Enabled reports whether any guard is configured.
func (g GuardConfig) Enabled() bool {
	return g != GuardConfig{}
}

func (c *Config) fillDefaults() {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.RecvBuf == 0 {
		c.RecvBuf = 256 << 10
	}
	if c.SendBuf == 0 {
		c.SendBuf = 256 << 10
	}
	if c.TSOMax == 0 {
		c.TSOMax = 64 << 10
	}
	if c.InitialRTO == 0 {
		c.InitialRTO = 50 * sim.Millisecond
	}
	if c.MinRTO == 0 {
		c.MinRTO = 5 * sim.Millisecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 2 * sim.Second
	}
	if c.DelAckDelay == 0 {
		c.DelAckDelay = sim.Millisecond
	}
	if c.TimeWait == 0 {
		c.TimeWait = 250 * sim.Millisecond
	}
	if c.PersistInterval == 0 {
		c.PersistInterval = 100 * sim.Millisecond
	}
	if c.InitialCwndMSS == 0 {
		c.InitialCwndMSS = 10
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 10
	}
	if c.EphemeralLo == 0 {
		c.EphemeralLo = 32768
	}
	if c.EphemeralHi == 0 {
		c.EphemeralHi = 65535
	}
	if c.Guard.HeaderDeadline != 0 && c.Guard.HeaderMinBytes == 0 {
		c.Guard.HeaderMinBytes = 64
	}
	if c.Guard.SynCookies && c.Guard.SynCookieWatermark == 0 {
		if c.Guard.SynBacklog > 0 {
			c.Guard.SynCookieWatermark = c.Guard.SynBacklog
		} else {
			c.Guard.SynCookieWatermark = 64
		}
	}
}

// DefaultConfig returns the default engine configuration with NoDelay set.
func DefaultConfig() Config {
	c := Config{NoDelay: true}
	c.fillDefaults()
	return c
}

// Engine errors.
var (
	ErrPortInUse    = errors.New("tcpeng: address already in use")
	ErrNoPorts      = errors.New("tcpeng: ephemeral ports exhausted")
	ErrConnClosed   = errors.New("tcpeng: connection closed")
	ErrNotListening = errors.New("tcpeng: not a listening socket")
	ErrReset        = errors.New("tcpeng: connection reset by peer")
)

// connKey identifies an established connection.
type connKey struct {
	localAddr  proto.Addr
	localPort  uint16
	remoteAddr proto.Addr
	remotePort uint16
}

// listenKey identifies a listener; a zero Addr listens on all local
// addresses.
type listenKey struct {
	addr proto.Addr
	port uint16
}

// Stats counts engine-wide events.
type Stats struct {
	SegsIn, SegsOut       uint64
	DataBytesIn           uint64
	DataBytesOut          uint64
	Retransmits           uint64
	FastRetransmits       uint64
	DupAcksIn             uint64
	OutOfOrderIn          uint64
	ResetsIn, ResetsOut   uint64
	AcceptedConns         uint64
	ActiveOpens           uint64
	DroppedSynBacklog     uint64
	SegsToClosedPort      uint64
	ChecksumPseudoDrops   uint64
	TimeWaitReaped        uint64
	RetriesExceeded       uint64
	PersistProbes         uint64
	DelayedAcksSent       uint64
	KeepAliveUnsupported  uint64
	FinsIn, FinsOut       uint64
	ZeroWindowAdvertised  uint64
	AcceptQueueOverflow   uint64
	SpuriousTimerFirings  uint64
	SegmentsTrimmed       uint64
	ConnsRemoved          uint64
	EstablishedTransitons uint64

	// Resource-guard activity (always zero with Config.Guard disabled).
	SynShed         uint64 // oldest embryonic conns shed to admit new SYNs
	SlowlorisReaped uint64 // conns reaped by header-progress or idle deadline
	SrcCapped       uint64 // SYNs dropped by the per-source connection cap

	// SYN-cookie activity (always zero with Guard.SynCookies off).
	SynCookiesSent      uint64 // stateless SYN|ACKs minted above the watermark
	SynCookiesValidated uint64 // ACKs whose cookie verified (PCB materialized)
	SynCookiesRejected  uint64 // ACKs whose cookie failed validation
}

// Engine is one TCP instance: the per-replica partition of TCP state.
type Engine struct {
	env  Env
	cfg  Config
	addr proto.Addr // our IP address

	conns     map[connKey]*Conn
	listeners map[listenKey]*Listener
	nextEphem uint16
	nextID    uint64

	// perSource counts live server-side (passively opened) connections by
	// remote address, for the MaxConnsPerSource guard.
	perSource map[proto.Addr]int

	// PCB pool: removed connections park their compact structs on connFree
	// and their buffer blocks on bufsFree; newConn recycles them, so conn
	// churn at steady state allocates nothing. Timer generations inside the
	// recycled structs keep increasing across incarnations (see ConnTimer).
	connFree   []*Conn
	bufsFree   []*connBufs
	poolReused uint64

	// SYN-cookie secret, drawn lazily from the Env RNG on first use so
	// engines that never mint a cookie consume an identical RNG stream.
	cookieSecret    uint32
	cookieSecretSet bool

	stats Stats
}

// NewEngine creates an engine bound to the local address addr.
func NewEngine(env Env, addr proto.Addr, cfg Config) *Engine {
	cfg.fillDefaults()
	return &Engine{
		env:       env,
		cfg:       cfg,
		addr:      addr,
		conns:     make(map[connKey]*Conn),
		listeners: make(map[listenKey]*Listener),
		perSource: make(map[proto.Addr]int),
		nextEphem: cfg.EphemeralLo,
	}
}

// Addr returns the engine's local IP address.
func (e *Engine) Addr() proto.Addr { return e.addr }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats { return e.stats }

// NumConns returns the number of live PCBs (any state incl. TIME_WAIT).
// NEaT's lazy termination (§3.4) garbage-collects a terminating replica
// when this reaches zero.
func (e *Engine) NumConns() int { return len(e.conns) }

// NumEstablished returns connections in app-usable states.
func (e *Engine) NumEstablished() int {
	n := 0
	for _, c := range e.conns {
		if c.state == StateEstablished || c.state == StateCloseWait {
			n++
		}
	}
	return n
}

// Listener is a listening socket (one replica's "subsocket" of a NEaT
// listening socket, §3.3).
type Listener struct {
	engine  *Engine
	key     listenKey
	backlog int
	// acceptQ holds established, not-yet-accepted connections.
	acceptQ []*Conn
	// embryonic counts connections still in SYN_RCVD; embHead/embTail
	// anchor an intrusive doubly-linked list of them in arrival order for
	// the guard's oldest-first shedding. Intrusive links make both insert
	// and removal O(1), so a storm of completing handshakes stays linear.
	embryonic        int
	embHead, embTail *Conn
	closed           bool
	// Ctx is opaque owner context (the stack stores socket bookkeeping).
	Ctx interface{}
}

// Port returns the listening port.
func (l *Listener) Port() uint16 { return l.key.port }

// Listen creates a listener on addr:port. A zero addr listens on the
// engine's address (wildcard).
func (e *Engine) Listen(addr proto.Addr, port uint16, backlog int) (*Listener, error) {
	k := listenKey{addr: addr, port: port}
	if _, dup := e.listeners[k]; dup {
		return nil, ErrPortInUse
	}
	if backlog <= 0 {
		backlog = 128
	}
	l := &Listener{engine: e, key: k, backlog: backlog}
	e.listeners[k] = l
	return l, nil
}

// Accept pops an established connection from the accept queue, or nil.
func (l *Listener) Accept() *Conn {
	if len(l.acceptQ) == 0 {
		return nil
	}
	c := l.acceptQ[0]
	l.acceptQ = l.acceptQ[1:]
	return c
}

// AcceptPending returns the number of queued established connections.
func (l *Listener) AcceptPending() int { return len(l.acceptQ) }

// Close stops accepting; queued connections are reset.
func (l *Listener) Close() {
	if l.closed {
		return
	}
	l.closed = true
	delete(l.engine.listeners, l.key)
	for _, c := range l.acceptQ {
		c.Abort()
	}
	l.acceptQ = nil
}

// lookupListener finds a listener for the destination of a SYN.
func (e *Engine) lookupListener(addr proto.Addr, port uint16) *Listener {
	if l, ok := e.listeners[listenKey{addr: addr, port: port}]; ok {
		return l
	}
	if l, ok := e.listeners[listenKey{port: port}]; ok {
		return l
	}
	return nil
}

// allocEphemeral picks a free local port for an active open to remote,
// cycling through the engine's partition of the ephemeral range.
func (e *Engine) allocEphemeral(remoteAddr proto.Addr, remotePort uint16) (uint16, error) {
	lo, hi := e.cfg.EphemeralLo, e.cfg.EphemeralHi
	span := int(hi) - int(lo) + 1
	for tries := 0; tries < span; tries++ {
		p := e.nextEphem
		if p < lo || p > hi {
			p = lo
		}
		if p == hi {
			e.nextEphem = lo
		} else {
			e.nextEphem = p + 1
		}
		k := connKey{localAddr: e.addr, localPort: p, remoteAddr: remoteAddr, remotePort: remotePort}
		if _, used := e.conns[k]; !used {
			return p, nil
		}
	}
	return 0, ErrNoPorts
}

// Connect starts an active open to remote:port and returns the new
// connection in SynSent state; Env.Connected fires on completion.
func (e *Engine) Connect(remote proto.Addr, port uint16) (*Conn, error) {
	return e.ConnectFrom(remote, port, 0)
}

// ConnectFrom is Connect with an explicit local port (0 allocates from the
// ephemeral range). A fixed local port pins the connection's 4-tuple — and
// therefore its flow hash, and therefore the serving replica under hash
// RSS — which the adversarial campaigns use to aim traffic.
func (e *Engine) ConnectFrom(remote proto.Addr, port, localPort uint16) (*Conn, error) {
	lp := localPort
	if lp == 0 {
		var err error
		lp, err = e.allocEphemeral(remote, port)
		if err != nil {
			return nil, err
		}
	} else if _, used := e.conns[connKey{localAddr: e.addr, localPort: lp,
		remoteAddr: remote, remotePort: port}]; used {
		return nil, ErrPortInUse
	}
	c := e.newConn(connKey{localAddr: e.addr, localPort: lp, remoteAddr: remote, remotePort: port})
	c.state = StateSynSent
	c.iss = e.env.RandUint32()
	c.snd.una = c.iss
	c.snd.nxt = c.iss + 1
	c.rto = e.cfg.InitialRTO
	e.stats.ActiveOpens++
	c.sendFlags(proto.TCPSyn, c.iss, 0, true)
	e.env.ArmTimer(c, TimerRexmit, c.rto)
	return c, nil
}

// newConn allocates (or recycles) a PCB and registers it.
func (e *Engine) newConn(k connKey) *Conn {
	e.nextID++
	var c *Conn
	if n := len(e.connFree); n > 0 {
		c = e.connFree[n-1]
		e.connFree[n-1] = nil
		e.connFree = e.connFree[:n-1]
		e.poolReused++
		// Full field reset, preserving the timer nodes: their sim.Timer
		// generations must keep increasing across incarnations so that any
		// in-flight fire from the previous owner stays stale.
		timers := c.Timers
		*c = Conn{Timers: timers}
	} else {
		c = &Conn{}
	}
	c.engine = e
	c.ID = e.nextID
	c.key = k
	c.mss = e.cfg.MSS
	for i := range c.Timers {
		c.Timers[i].C = c
		c.Timers[i].Kind = TimerKind(i)
	}
	c.rcv.bufMax = e.cfg.RecvBuf
	c.snd.bufMax = e.cfg.SendBuf
	c.rcv.wndShift, c.snd.wndShift = windowShift(e.cfg.RecvBuf), 0
	c.snd.cwnd = uint32(e.cfg.InitialCwndMSS * e.cfg.MSS)
	c.snd.ssthresh = 0xffffffff
	e.conns[k] = c
	return c
}

// windowShift returns the window-scale shift needed to advertise buf bytes.
func windowShift(buf int) uint8 {
	var s uint8
	for buf>>s > 0xffff && s < 14 {
		s++
	}
	return s
}

// remove deletes a PCB, fires ConnRemoved and recycles the struct.
func (e *Engine) remove(c *Conn) {
	if c.removed {
		return
	}
	c.removed = true
	for k := TimerKind(0); k < NumTimers; k++ {
		e.env.StopTimer(c, k)
	}
	delete(e.conns, c.key)
	if c.Listener != nil {
		if n := e.perSource[c.key.remoteAddr]; n <= 1 {
			delete(e.perSource, c.key.remoteAddr)
		} else {
			e.perSource[c.key.remoteAddr] = n - 1
		}
	}
	e.stats.ConnsRemoved++
	e.env.ConnRemoved(c)
	// Recycle after the upcall: the env reads c.ID/addresses synchronously.
	// Stopping the timers above bumped every node's generation, so fires
	// already in flight stay stale no matter who reuses the struct.
	if b := c.bufs; b != nil {
		c.bufs = nil
		b.recycle()
		e.bufsFree = append(e.bufsFree, b)
	}
	e.connFree = append(e.connFree, c)
}

// getBufs takes a buffer block from the free list or allocates one.
func (e *Engine) getBufs() *connBufs {
	if n := len(e.bufsFree); n > 0 {
		b := e.bufsFree[n-1]
		e.bufsFree[n-1] = nil
		e.bufsFree = e.bufsFree[:n-1]
		return b
	}
	return &connBufs{}
}

// PoolStats reports PCB pool occupancy.
type PoolStats struct {
	LiveHot   int    // live PCBs with no buffer block attached (compact)
	LiveFull  int    // live PCBs with buffers attached
	FreeConns int    // recycled PCB structs awaiting reuse
	FreeBufs  int    // recycled buffer blocks awaiting reuse
	Reused    uint64 // cumulative PCB recycles
}

// PoolStats returns a snapshot of the PCB pool occupancy.
func (e *Engine) PoolStats() PoolStats {
	ps := PoolStats{FreeConns: len(e.connFree), FreeBufs: len(e.bufsFree), Reused: e.poolReused}
	for _, c := range e.conns {
		if c.bufs != nil {
			ps.LiveFull++
		} else {
			ps.LiveHot++
		}
	}
	return ps
}

// pushEmbryonic appends c to the listener's embryonic arrival list.
func (l *Listener) pushEmbryonic(c *Conn) {
	c.embPrev, c.embNext = l.embTail, nil
	if l.embTail != nil {
		l.embTail.embNext = c
	} else {
		l.embHead = c
	}
	l.embTail = c
}

// dropEmbryonic unlinks c from the listener's embryonic arrival list.
func (l *Listener) dropEmbryonic(c *Conn) {
	if c.embPrev == nil && c.embNext == nil && l.embHead != c {
		return // not linked
	}
	if c.embPrev != nil {
		c.embPrev.embNext = c.embNext
	} else {
		l.embHead = c.embNext
	}
	if c.embNext != nil {
		c.embNext.embPrev = c.embPrev
	} else {
		l.embTail = c.embPrev
	}
	c.embPrev, c.embNext = nil, nil
}

// Flow returns the flow (local as source) of a connection key.
func (k connKey) flow() proto.Flow {
	return proto.Flow{
		Src: k.localAddr, SrcPort: k.localPort,
		Dst: k.remoteAddr, DstPort: k.remotePort,
		Proto: proto.ProtoTCP,
	}
}

// LookupListener returns the listener bound to port (any address), or nil.
func (e *Engine) LookupListener(port uint16) *Listener {
	for _, l := range e.listeners {
		if l.key.port == port {
			return l
		}
	}
	return nil
}

// EmbryonicConns returns the number of half-open (SYN_RCVD) connections
// across all listeners — the PCB-table footprint a SYN flood inflates and
// SYN-cookie offload keeps at zero.
func (e *Engine) EmbryonicConns() int {
	n := 0
	for _, l := range e.listeners {
		n += l.embryonic
	}
	return n
}

// LookupByID returns the live connection with the given ID, or nil.
func (e *Engine) LookupByID(id uint64) *Conn {
	for _, c := range e.conns {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// Shutdown aborts every connection and closes every listener; used when a
// replica is torn down abruptly (crash simulation does NOT call this —
// crash loses state without sending RSTs, exactly like the paper).
func (e *Engine) Shutdown() {
	for _, c := range snapshot(e.conns) {
		c.Abort()
	}
	for _, l := range e.listeners {
		l.closed = true
	}
	e.listeners = make(map[listenKey]*Listener)
}

func snapshot(m map[connKey]*Conn) []*Conn {
	out := make([]*Conn, 0, len(m))
	for _, c := range m {
		out = append(out, c)
	}
	return out
}
