// Package neat is the public facade of this repository: a faithful,
// simulation-backed reproduction of "A NEaT Design for Reliable and
// Scalable Network Stacks" (Hruby et al., CoNEXT 2016).
//
// NEaT partitions a BSD-socket network stack across N fully isolated
// replicas — single-threaded, event-driven processes that never share
// state and never talk to each other — and steers each TCP connection to
// exactly one replica using the NIC's flow-director filters and RSS
// hashing. The payoff is reliability (a crashing replica loses only its
// own connections and is respawned statelessly), scalability (no locks,
// no shared cache lines) and, as a by-product, address-space
// re-randomization across connections.
//
// Everything runs on a deterministic discrete-event simulation of the
// paper's testbed (machines, cores, hyperthreads, a multi-queue 10G NIC,
// a 10GbE link), with a real TCP/IP protocol suite doing real byte-level
// work. See DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-vs-measured results.
//
// Quick start (see examples/quickstart for the full program):
//
//	net := neat.NewNetwork(42)
//	server := neat.NewServerMachine(net, neat.AMD12)
//	client := neat.NewClientMachine(net, 2)
//	sys, _ := server.StartNEaT(client, neat.SystemConfig{Replicas: 3})
//	...
package neat

import (
	"neat/internal/core"
	"neat/internal/experiments"
	"neat/internal/proto"
	"neat/internal/sim"
	"neat/internal/stack"
	"neat/internal/tcpeng"
	"neat/internal/testbed"
)

// Re-exported building blocks. The internal packages carry the full API;
// the facade covers the workflows the examples and tools need.

// Network is a two-machine simulated network (one 10GbE link).
type Network = testbed.Net

// Machine is a host with its NIC and driver.
type Machine = testbed.Host

// System is a running NEaT network stack.
type System = core.System

// ReplicaKind selects single- or multi-component replicas.
type ReplicaKind = stack.Kind

// Replica kinds.
const (
	SingleComponent = stack.Single
	MultiComponent  = stack.Multi
)

// MachineModel selects one of the paper's testbed machines.
type MachineModel int

// Supported machine models.
const (
	// AMD12 is the 12-core 1.9 GHz AMD Opteron 6168.
	AMD12 MachineModel = iota
	// Xeon8x2 is the 8-core 2.26 GHz Xeon E5520 with 2-way SMT.
	Xeon8x2
)

// Addr is an IPv4 address.
type Addr = proto.Addr

// IPv4 builds an address from octets.
func IPv4(a, b, c, d byte) Addr { return proto.IPv4(a, b, c, d) }

// Time is simulated time in nanoseconds.
type Time = sim.Time

// Common durations.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewNetwork creates a deterministic simulated network seeded with seed.
func NewNetwork(seed int64) *Network { return testbed.New(seed) }

// NewServerMachine attaches a system-under-test machine to the network.
func NewServerMachine(n *Network, model MachineModel) *Machine {
	switch model {
	case Xeon8x2:
		return testbed.DefaultXeonHost(n, 0, 8, testbed.ThreadLoc{Core: 0})
	default:
		return testbed.DefaultAMDHost(n, 0, 8)
	}
}

// NewClientMachine attaches an oversized load-generator machine with the
// given number of client stack replicas.
func NewClientMachine(n *Network, stacks int) *Machine {
	return testbed.DefaultClientHost(n, 1, stacks)
}

// SystemConfig configures StartNEaT.
type SystemConfig struct {
	// Replicas is the partition count (default 2).
	Replicas int
	// Kind selects single- (default) or multi-component replicas.
	Kind ReplicaKind
	// FirstCore is the first core used for replicas (default 2: core 0
	// hosts the NIC driver and core 1 the SYSCALL server).
	FirstCore int
	// TSO enables TCP segmentation offload.
	TSO bool
}

// StartNEaT boots a NEaT system on machine m serving traffic from peer.
func StartNEaT(m, peer *Machine, cfg SystemConfig) (*System, error) {
	if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	if cfg.FirstCore == 0 {
		cfg.FirstCore = 2
	}
	tcp := tcpeng.DefaultConfig()
	tcp.TSO = cfg.TSO
	slots := testbed.SingleSlots(cfg.FirstCore, cfg.Replicas)
	if cfg.Kind == stack.Multi {
		slots = testbed.MultiSlots(cfg.FirstCore, cfg.Replicas)
	}
	return m.BuildNEaT(peer, testbed.NEaTConfig{
		Kind: cfg.Kind, TCP: tcp,
		Slots:   slots,
		Syscall: testbed.ThreadLoc{Core: 1},
	})
}

// StartClientSystem boots the load-generator-side stack on machine m.
func StartClientSystem(m, peer *Machine, stacks int) (*System, error) {
	return m.BuildClientSystem(peer, stacks, tcpeng.DefaultConfig())
}

// Experiments re-exports the paper's evaluation harness.

// ExperimentOptions tunes experiment runs.
type ExperimentOptions = experiments.Options

// ExperimentResult is one reproduced table or figure.
type ExperimentResult = experiments.Result

// RunAllExperiments regenerates every table and figure of §6.
func RunAllExperiments(o ExperimentOptions) []*ExperimentResult {
	return experiments.All(o)
}
