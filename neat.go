// Package neat is the public facade of this repository: a faithful,
// simulation-backed reproduction of "A NEaT Design for Reliable and
// Scalable Network Stacks" (Hruby et al., CoNEXT 2016).
//
// NEaT partitions a BSD-socket network stack across N fully isolated
// replicas — single-threaded, event-driven processes that never share
// state and never talk to each other — and steers each TCP connection to
// exactly one replica using the NIC's flow-director filters and RSS
// hashing. The payoff is reliability (a crashing replica loses only its
// own connections and is respawned statelessly), scalability (no locks,
// no shared cache lines) and, as a by-product, address-space
// re-randomization across connections.
//
// Everything runs on a deterministic discrete-event simulation of the
// paper's testbed (machines, cores, hyperthreads, a multi-queue 10G NIC,
// a 10GbE link), with a real TCP/IP protocol suite doing real byte-level
// work. See DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-vs-measured results.
//
// Quick start (see examples/quickstart for the full program):
//
//	net := neat.NewNetwork(42)
//	server := neat.NewServerMachine(net, neat.AMD12)
//	client := neat.NewClientMachine(net, 2)
//	sys, _ := server.StartNEaT(client, neat.SystemConfig{Replicas: 3})
//	...
package neat

import (
	"fmt"

	"neat/internal/core"
	"neat/internal/experiments"
	"neat/internal/ipc"
	"neat/internal/metrics"
	"neat/internal/proto"
	"neat/internal/report"
	"neat/internal/sim"
	"neat/internal/stack"
	"neat/internal/steer"
	"neat/internal/tcpeng"
	"neat/internal/testbed"
	"neat/internal/trace"
)

// Re-exported building blocks. The internal packages carry the full API;
// the facade covers the workflows the examples and tools need.

// Network is a two-machine simulated network (one 10GbE link).
type Network = testbed.Net

// Machine is a host with its NIC and driver.
type Machine = testbed.Host

// System is a running NEaT network stack.
type System = core.System

// Observability. The unified API has three layers, all reached through
// the facade (examples and tools should not import the internal packages
// directly):
//
//   - System.Metrics() returns a Registry: every counter, gauge and
//     histogram of the system, pulled on demand from the live components
//     (zero cost until asked).
//   - SystemConfig{Observe: true} attaches a Tracer before boot; then
//     System.Trace().Breakdown() gives per-hop queueing-vs-processing
//     latency Spans and System.Trace().Events() the lifecycle timeline
//     (spawns, detections, escalations, RSS rebinds, recoveries).
//   - Tracing is opt-in and free when off: an untraced system runs the
//     exact same instruction path as one built before this API existed.

// Registry is a named collection of counters, gauges and histograms.
type Registry = metrics.Registry

// Histogram is a power-of-two-bucketed latency/value histogram.
type Histogram = metrics.Histogram

// Tracer records per-message spans and lifecycle events.
type Tracer = trace.Tracer

// Span aggregates one hop of the message path: how long messages queued
// there and how long the hop spent processing them.
type Span = trace.Span

// Breakdown is the per-hop latency table, ordered along the packet path
// (wire → NIC → driver → stack components → SYSCALL → application).
type Breakdown = trace.Breakdown

// TraceEvent is one timestamped lifecycle event.
type TraceEvent = trace.Event

// Table is a formatted report table (what Breakdown.Table and Timeline
// return; print with String()).
type Table = report.Table

// Timeline renders lifecycle events as a simulated-time-ordered table.
func Timeline(events []TraceEvent, title string) *Table {
	return trace.Timeline(events, title)
}

// CPUSampler measures per-core utilization over a simulated window.
type CPUSampler = metrics.CPUSampler

// NewCPUSampler starts sampling machine m's cores now.
func NewCPUSampler(m *Machine) *CPUSampler {
	return metrics.NewCPUSampler(m.Machine)
}

// ReplicaKind selects single- or multi-component replicas.
type ReplicaKind = stack.Kind

// Replica kinds.
const (
	SingleComponent = stack.Single
	MultiComponent  = stack.Multi
)

// MachineModel selects one of the paper's testbed machines.
type MachineModel int

// Supported machine models.
const (
	// AMD12 is the 12-core 1.9 GHz AMD Opteron 6168.
	AMD12 MachineModel = iota
	// Xeon8x2 is the 8-core 2.26 GHz Xeon E5520 with 2-way SMT.
	Xeon8x2
)

// Addr is an IPv4 address.
type Addr = proto.Addr

// IPv4 builds an address from octets.
func IPv4(a, b, c, d byte) Addr { return proto.IPv4(a, b, c, d) }

// Time is simulated time in nanoseconds.
type Time = sim.Time

// Common durations.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewNetwork creates a deterministic simulated network seeded with seed.
func NewNetwork(seed int64) *Network { return testbed.New(seed) }

// NewServerMachine attaches a system-under-test machine to the network.
func NewServerMachine(n *Network, model MachineModel) *Machine {
	switch model {
	case Xeon8x2:
		return testbed.DefaultXeonHost(n, 0, 8, testbed.ThreadLoc{Core: 0})
	default:
		return testbed.DefaultAMDHost(n, 0, 8)
	}
}

// NewClientMachine attaches an oversized load-generator machine with the
// given number of client stack replicas.
func NewClientMachine(n *Network, stacks int) *Machine {
	return testbed.DefaultClientHost(n, 1, stacks)
}

// SystemConfig configures StartNEaT. The zero value is a working system:
// two single-component replicas on cores 2 and 3, no TSO, the paper's
// instantaneous crash oracle for failure detection, and no observability
// instruments attached.
type SystemConfig struct {
	// Replicas is the partition count (default 2). The testbed NICs
	// expose 8 RX/TX queue pairs, so at most 8 replicas are steerable.
	Replicas int
	// Kind selects single- (default) or multi-component replicas.
	// Multi-component replicas occupy two consecutive cores each.
	Kind ReplicaKind
	// FirstCore is the first core used for replicas (default 2: core 0
	// hosts the NIC driver and core 1 the SYSCALL server).
	FirstCore int
	// TSO enables TCP segmentation offload (default off, as in the
	// paper's headline configurations).
	TSO bool
	// Watchdog switches failure detection from the instantaneous crash
	// oracle to heartbeat probing with the escalation ladder (§ watchdog
	// in DESIGN.md). Default off: the oracle matches the paper's
	// methodology.
	Watchdog bool
	// Observe attaches the observability layer before boot: a message
	// tracer on the whole simulated network plus the lifecycle event
	// timeline, reachable via System.Trace(). Default off; an untraced
	// system pays zero observation cost.
	Observe bool
	// Steering configures the flow placement plane: which replica a new
	// flow's packets are hashed to, which replica serves an outbound
	// connect, and how a retiring replica drains. The zero value is the
	// paper's behaviour (RSS hash indirection, no drain deadline).
	Steering SteeringConfig
	// Guard configures the per-replica resource guards against hostile
	// peers (SYN-backlog shedding, slowloris header/idle deadlines,
	// per-source connection caps). The zero value disables every guard,
	// preserving the paper's behaviour exactly; see GuardConfig.
	Guard GuardConfig
	// IPC tunes the modeled shared-memory message rings of every channel
	// the system creates (replica↔replica, replica↔application, SYSCALL
	// server). The zero value keeps the calibrated per-message doorbell
	// behaviour; see IPCConfig.
	IPC IPCConfig
}

// IPCConfig tunes the bounded SPSC message rings of §3.2's user-space
// channels. The zero value is the paper's calibrated behaviour: a
// per-message doorbell and the package-default ring depth.
type IPCConfig struct {
	// RingDepth bounds the in-flight messages per channel; a sender
	// finding its ring full stalls until the receiver frees the head slot
	// (counted as sim.ipc.stalls). 0 selects the package default (8192).
	RingDepth int
	// CoalesceWakes enables doorbell/wake coalescing: a sender touching an
	// already-armed ring skips the wake cost and the receiver drains the
	// ring until empty before re-arming — the fast-channel batching the
	// paper's scalability rests on. Off by default so results stay
	// byte-identical to the calibrated per-message model.
	CoalesceWakes bool
}

// GuardConfig bounds the resources one remote peer can pin inside a
// replica. Guards are the containment half of the adversarial-workload
// plane: partitioning already limits an attack's blast radius to the
// replicas its flows hash to, and the guards keep even those replicas
// serving by shedding the attacker's state deterministically. Each field
// is independent and disabled at zero. Activity is counted in
// System.Metrics() as stack.syn_shed, stack.slowloris_reaped and
// stack.src_capped.
type GuardConfig struct {
	// SynBacklog caps half-open (SYN_RCVD) connections per listener per
	// replica; at the cap the oldest half-open connection is shed to
	// admit a new SYN, so a SYN flood recycles its own slots instead of
	// wedging the listener.
	SynBacklog int
	// HeaderDeadline reaps an accepted connection that has delivered
	// fewer than HeaderMinBytes by this deadline — the slowloris defense.
	HeaderDeadline Time
	// HeaderMinBytes is the cumulative byte floor for HeaderDeadline
	// (default 64 when a deadline is set).
	HeaderMinBytes int
	// IdleDeadline reaps a connection with no inbound segment at all for
	// this long (ACKs count as activity, so slow readers of a long
	// download are safe).
	IdleDeadline Time
	// MaxConnsPerSource caps server-side connections per remote address;
	// SYNs beyond the cap are dropped.
	MaxConnsPerSource int
}

// SteeringConfig selects and tunes a flow placement policy.
type SteeringConfig struct {
	// Policy names the placement policy:
	//
	//   - "" or "hash": the paper's RSS indirection-table modulo hash
	//     (default). Scale events remap roughly half of the unpinned
	//     flow space.
	//   - "ring": consistent-hash ring with virtual nodes; adding or
	//     removing one replica out of N remaps only O(1/N) of the
	//     unpinned flows.
	//   - "least-loaded" (aliases "leastloaded", "p2c"):
	//     power-of-two-choices over live per-replica connection counts;
	//     skew-resistant under elephant-flow workloads.
	//
	// Established connections are never remapped by any policy: their
	// flow-director filters pin them to the owning replica (§3.4).
	Policy string
	// RingVNodes is the virtual nodes per replica for the "ring" policy
	// (default 64; more vnodes = smoother balance, larger table).
	RingVNodes int
	// DrainDeadline bounds a retiring replica's graceful drain. Zero
	// (default) keeps the paper's unbounded lazy termination: the
	// replica serves existing connections until the last one closes.
	// Positive: if connections remain when the deadline fires, they are
	// force-closed (reset with ErrReplicaRetired) and the replica is
	// collected.
	DrainDeadline Time
}

// Validate reports the first configuration error, with enough context to
// fix it. StartNEaT calls it; call it directly to check a config built
// from user input.
func (cfg SystemConfig) Validate() error {
	if cfg.Replicas < 0 {
		return fmt.Errorf("neat: SystemConfig.Replicas is %d; want 0 (default 2) or a positive count", cfg.Replicas)
	}
	if cfg.Replicas > 8 {
		return fmt.Errorf("neat: SystemConfig.Replicas is %d, but the testbed NICs expose 8 RX/TX queue pairs; use at most 8 replicas", cfg.Replicas)
	}
	if cfg.Kind != stack.Single && cfg.Kind != stack.Multi {
		return fmt.Errorf("neat: SystemConfig.Kind is %d; want neat.SingleComponent or neat.MultiComponent", cfg.Kind)
	}
	if cfg.FirstCore == 1 || cfg.FirstCore < 0 {
		return fmt.Errorf("neat: SystemConfig.FirstCore is %d; cores 0 and 1 host the NIC driver and the SYSCALL server, so replicas start at core 2 (the default)", cfg.FirstCore)
	}
	if _, err := steer.ParsePolicy(cfg.Steering.Policy); err != nil {
		return fmt.Errorf("neat: SystemConfig.Steering.Policy %q: %v; want \"\", \"hash\", \"ring\" or \"least-loaded\"", cfg.Steering.Policy, err)
	}
	if cfg.Steering.RingVNodes < 0 {
		return fmt.Errorf("neat: SystemConfig.Steering.RingVNodes is %d; want 0 (default %d) or a positive count", cfg.Steering.RingVNodes, steer.DefaultRingVNodes)
	}
	if cfg.Steering.DrainDeadline < 0 {
		return fmt.Errorf("neat: SystemConfig.Steering.DrainDeadline is %v; want 0 (drain without deadline) or a positive duration", cfg.Steering.DrainDeadline)
	}
	if cfg.Guard.SynBacklog < 0 {
		return fmt.Errorf("neat: SystemConfig.Guard.SynBacklog is %d; want 0 (guard off) or a positive half-open cap", cfg.Guard.SynBacklog)
	}
	if cfg.Guard.HeaderDeadline < 0 {
		return fmt.Errorf("neat: SystemConfig.Guard.HeaderDeadline is %v; want 0 (guard off) or a positive deadline", cfg.Guard.HeaderDeadline)
	}
	if cfg.Guard.HeaderMinBytes < 0 {
		return fmt.Errorf("neat: SystemConfig.Guard.HeaderMinBytes is %d; want 0 (default 64) or a positive byte floor", cfg.Guard.HeaderMinBytes)
	}
	if cfg.Guard.HeaderMinBytes > 0 && cfg.Guard.HeaderDeadline == 0 {
		return fmt.Errorf("neat: SystemConfig.Guard.HeaderMinBytes is %d but HeaderDeadline is 0; the byte floor only applies with a deadline set", cfg.Guard.HeaderMinBytes)
	}
	if cfg.Guard.IdleDeadline < 0 {
		return fmt.Errorf("neat: SystemConfig.Guard.IdleDeadline is %v; want 0 (guard off) or a positive deadline", cfg.Guard.IdleDeadline)
	}
	if cfg.Guard.MaxConnsPerSource < 0 {
		return fmt.Errorf("neat: SystemConfig.Guard.MaxConnsPerSource is %d; want 0 (guard off) or a positive per-source cap", cfg.Guard.MaxConnsPerSource)
	}
	if cfg.IPC.RingDepth < 0 {
		return fmt.Errorf("neat: SystemConfig.IPC.RingDepth is %d; want 0 (default %d) or a positive in-flight bound", cfg.IPC.RingDepth, ipc.DefaultRingDepth)
	}
	return nil
}

// StartNEaT boots a NEaT system on machine m serving traffic from peer.
func StartNEaT(m, peer *Machine, cfg SystemConfig) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	if cfg.FirstCore == 0 {
		cfg.FirstCore = 2
	}
	perReplica := 1
	slots := testbed.SingleSlots(cfg.FirstCore, cfg.Replicas)
	if cfg.Kind == stack.Multi {
		perReplica = 2
		slots = testbed.MultiSlots(cfg.FirstCore, cfg.Replicas)
	}
	if last := cfg.FirstCore + perReplica*cfg.Replicas - 1; last >= m.Machine.NumCores() {
		return nil, fmt.Errorf("neat: %d %s replicas starting at core %d need cores up to %d, but machine %q has %d cores; use fewer replicas or a lower FirstCore",
			cfg.Replicas, kindName(cfg.Kind), cfg.FirstCore, last, m.Machine.Name, m.Machine.NumCores())
	}
	tcp := tcpeng.DefaultConfig()
	tcp.TSO = cfg.TSO
	tcp.Guard = tcpeng.GuardConfig{
		SynBacklog:        cfg.Guard.SynBacklog,
		HeaderDeadline:    cfg.Guard.HeaderDeadline,
		HeaderMinBytes:    cfg.Guard.HeaderMinBytes,
		IdleDeadline:      cfg.Guard.IdleDeadline,
		MaxConnsPerSource: cfg.Guard.MaxConnsPerSource,
	}
	var obs core.ObserveConfig
	if cfg.Observe {
		obs.Trace = trace.New().Attach(m.Net.Sim)
	}
	var wd core.WatchdogConfig
	wd.Enabled = cfg.Watchdog
	policy, _ := steer.ParsePolicy(cfg.Steering.Policy) // Validate checked it
	return m.BuildNEaT(peer, testbed.NEaTConfig{
		Kind: cfg.Kind, TCP: tcp,
		Slots:    slots,
		Syscall:  testbed.ThreadLoc{Core: 1},
		Watchdog: wd,
		Observe:  obs,
		Steering: steer.Config{
			Policy:        policy,
			RingVNodes:    cfg.Steering.RingVNodes,
			DrainDeadline: cfg.Steering.DrainDeadline,
		},
		IPC: testbed.IPCTuning{
			RingDepth:     cfg.IPC.RingDepth,
			CoalesceWakes: cfg.IPC.CoalesceWakes,
		},
	})
}

// kindName names a replica kind in error messages.
func kindName(k ReplicaKind) string {
	if k == stack.Multi {
		return "multi-component"
	}
	return "single-component"
}

// StartClientSystem boots the load-generator-side stack on machine m.
func StartClientSystem(m, peer *Machine, stacks int) (*System, error) {
	return m.BuildClientSystem(peer, stacks, tcpeng.DefaultConfig())
}

// Experiments re-exports the paper's evaluation harness.

// ExperimentOptions tunes experiment runs.
type ExperimentOptions = experiments.Options

// ExperimentResult is one reproduced table or figure.
type ExperimentResult = experiments.Result

// RunAllExperiments regenerates every table and figure of §6.
func RunAllExperiments(o ExperimentOptions) []*ExperimentResult {
	return experiments.All(o)
}
