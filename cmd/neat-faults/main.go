// Command neat-faults runs fault-injection campaigns standalone.
//
// The default mode reproduces §6.6: N failing runs against a
// multi-component NEaT stack under web load, classifying each recovery,
// and printing the Table 3 breakdown.
//
// -matrix runs the extended campaign instead: every fault kind (crash,
// hang, storm) against every component of the plane (pf, ip, udp, tcp,
// driver, syscall) under watchdog failure detection, reported as an
// extended Table 3.
//
// -attack runs the adversarial-workload campaign: every hostile-client
// archetype (slowloris, SYN flood, connection churn) aimed at one of four
// guarded replicas, under both placement policies, reporting clean-replica
// goodput retention.
//
// -replay re-executes a single matrix run verbosely for debugging: the
// same seed reproduces the run bit for bit, and the report dumps the
// watchdog and management-plane counters the campaign aggregates away.
//
// -timeline re-executes a single matrix run with the observability layer
// attached and prints the management plane's annotated lifecycle-event
// timeline (detections, escalations, RSS rebinds, recoveries) in
// simulated-time order.
//
// Usage:
//
//	neat-faults [-runs N] [-seed N] [-quick]           Table 3 (§6.6)
//	neat-faults -matrix [-seed N] [-quick]             fault matrix
//	neat-faults -attack [-seed N] [-quick]             goodput under attack
//	neat-faults -replay SEED [-kind K] [-comp C]       verbose single run
//	neat-faults -timeline SEED [-kind K] [-comp C]     annotated event timeline
package main

import (
	"flag"
	"fmt"

	"neat/internal/cliutil"
	"neat/internal/experiments"
	"neat/internal/faultinject"
)

func main() {
	ef := cliutil.Experiment(1)
	runs := flag.Int("runs", 100, "number of failing runs to collect (Table 3 mode)")
	matrix := flag.Bool("matrix", false, "run the extended kind × component fault matrix")
	attack := flag.Bool("attack", false, "run the goodput-under-attack campaign (hostile clients vs guarded replicas)")
	replay := flag.Int64("replay", 0, "re-run one matrix run with this seed, verbosely")
	timeline := flag.Int64("timeline", 0, "re-run one matrix run with this seed and print the lifecycle-event timeline")
	kindName := flag.String("kind", "crash", "fault kind for -replay/-timeline: crash, hang or storm")
	comp := flag.String("comp", "tcp", "component for -replay/-timeline: pf, ip, udp, tcp, driver or syscall")
	flag.Parse()

	o := ef.Options()
	switch {
	case *replay != 0 || *timeline != 0:
		kind, err := faultinject.KindFromString(*kindName)
		if err != nil {
			cliutil.Fail("%v", err)
		}
		if *timeline != 0 {
			cliutil.Emit(experiments.FaultTimeline(o, *timeline, kind, *comp))
			return
		}
		cliutil.Emit(experiments.FaultReplay(o, *replay, kind, *comp))
	case *attack:
		cliutil.Emit(experiments.GoodputUnderAttack(o))
		fmt.Printf("(campaign executed with quick=%v)\n", o.Quick)
	case *matrix:
		cliutil.Emit(experiments.FaultMatrix(o))
		fmt.Printf("(campaign executed with quick=%v)\n", o.Quick)
	default:
		o.Quick = o.Quick || *runs < 100
		cliutil.Emit(experiments.Table3(o))
		fmt.Printf("(campaign executed with quick=%v)\n", o.Quick)
	}
}
