// Command neat-faults runs the §6.6 fault-injection campaign standalone:
// N failing runs against a multi-component NEaT stack under web load,
// classifying each recovery, and printing the Table 3 breakdown.
//
// Usage:
//
//	neat-faults [-runs N] [-seed N] [-v]
package main

import (
	"flag"
	"fmt"

	"neat/internal/experiments"
)

func main() {
	runs := flag.Int("runs", 100, "number of failing runs to collect")
	seed := flag.Int64("seed", 1, "base simulation seed")
	quick := flag.Bool("quick", false, "shorter observation windows")
	flag.Parse()

	o := experiments.Options{Quick: *quick || *runs < 100, Seed: *seed}
	res := experiments.Table3(o)
	fmt.Print(res.String())
	fmt.Printf("(campaign executed with quick=%v)\n", o.Quick)
}
