// Command neat-demo boots a complete NEaT web farm on the simulated AMD
// testbed, drives it with httperf-style load, crashes a replica mid-run,
// scales up and lazily scales down — narrating what the system does. It is
// the guided tour of the repository.
//
// Usage:
//
//	neat-demo [-replicas N] [-webs N] [-seed N]
package main

import (
	"flag"
	"fmt"

	"neat"
	"neat/internal/app"
	"neat/internal/cliutil"
	"neat/internal/ipc"
	"neat/internal/report"
	"neat/internal/sim"
)

func main() {
	replicas := flag.Int("replicas", 3, "initial replica count (slots: replicas+1)")
	webs := flag.Int("webs", 4, "lighttpd instances")
	seed := flag.Int64("seed", 7, "simulation seed")
	topo := flag.Bool("topo", false, "print the machine topology (the textual Figure 6/8/10)")
	flag.Parse()

	// Observe attaches the tracing layer: the demo ends by replaying the
	// lifecycle event timeline the management plane recorded. The farm
	// starts with one slot spare for the scale-up demo.
	farm, err := cliutil.BootFarm(*seed, *webs,
		neat.SystemConfig{Replicas: *replicas + 1, Observe: true},
		func(sys *neat.System) error { return sys.ScaleDown() })
	if err != nil {
		cliutil.Fail("%v", err)
	}
	net, server, client := farm.Net, farm.Server, farm.Client
	sys := farm.Sys

	fmt.Printf("== NEaT demo: %d replicas (1 spare slot), %d lighttpd instances ==\n", *replicas, *webs)
	defer func() {
		if *topo {
			fmt.Println()
			fmt.Print(report.Topology(server.Machine))
		}
	}()

	var servers []*app.HTTPD
	var gens []*app.Loadgen
	for i := 0; i < *webs; i++ {
		h := app.NewHTTPD(server.AppThread(2+*replicas+1+i), fmt.Sprintf("lighttpd%d", i),
			sys.SyscallProc(), ipc.DefaultCosts(), app.HTTPDConfig{
				Port: uint16(8000 + i), Files: map[string]int{"/index": 20},
			})
		h.Start()
		servers = append(servers, h)
		lg := app.NewLoadgen(client.AppThread(2+*webs+i), fmt.Sprintf("httperf%d", i),
			farm.CliSys.SyscallProc(), ipc.DefaultCosts(), app.LoadgenConfig{
				Target: server.IP, Port: uint16(8000 + i), URI: "/index",
				Conns: 16, ReqPerConn: 100, Timeout: 200 * sim.Millisecond,
			})
		gens = append(gens, lg)
	}
	net.Sim.RunFor(2 * sim.Millisecond)
	for _, g := range gens {
		g.Start()
	}

	rate := func(d sim.Time) float64 {
		for _, g := range gens {
			g.BeginMeasure()
		}
		net.Sim.RunFor(d)
		var good uint64
		for _, g := range gens {
			good += g.GoodResponses()
		}
		return float64(good) / d.Seconds() / 1000
	}

	net.Sim.RunFor(50 * sim.Millisecond)
	fmt.Printf("steady state:            %6.1f krps, %d live connections, %d NIC filters\n",
		rate(100*sim.Millisecond), sys.TotalConns(), server.NIC.NumFilters())

	fmt.Println("-- crashing replica 0 (all its TCP connections are lost; others undisturbed)")
	sys.Replicas()[0].Procs()[0].Crash(sim.ErrKilled)
	fmt.Printf("during recovery:         %6.1f krps\n", rate(100*sim.Millisecond))
	st := sys.Stats()
	fmt.Printf("recovery: %d restart(s), %d connection(s) lost, slot states %v\n",
		st.Recoveries, st.ConnectionsLost, sys.SlotStates())

	fmt.Println("-- scaling up: activating the spare replica slot")
	if _, err := sys.ScaleUp(); err != nil {
		cliutil.Fail("%v", err)
	}
	fmt.Printf("after scale-up:          %6.1f krps, %d active replicas\n",
		rate(100*sim.Millisecond), sys.NumActive())

	fmt.Println("-- scaling down: lazy termination (existing connections drain first)")
	if err := sys.ScaleDown(); err != nil {
		cliutil.Fail("%v", err)
	}
	fmt.Printf("during lazy termination: %6.1f krps, slot states %v\n",
		rate(100*sim.Millisecond), sys.SlotStates())
	net.Sim.RunFor(500 * sim.Millisecond)
	fmt.Printf("after draining:          slot states %v (%d replicas collected)\n",
		sys.SlotStates(), sys.Stats().ReplicasGarbage)

	var errs uint64
	for _, g := range gens {
		errs += g.Stats().ConnErrors
	}
	fmt.Printf("\ntotals: %d responses served, %d client-visible errors (from the crash), events simulated: %d\n",
		totalResponses(gens), errs, net.Sim.EventsRun())

	reg := sys.Metrics()
	fmt.Printf("server metrics: %d frames in, %d frames out, %d filters installed, %d recoveries\n",
		reg.Counter("nic.rx_frames").Value(), reg.Counter("nic.tx_frames").Value(),
		reg.Counter("core.filters_installed").Value(), reg.Counter("core.recoveries").Value())
	fmt.Println()
	fmt.Print(neat.Timeline(sys.Trace().Events(), "what the management plane did, when").String())
}

func totalResponses(gens []*app.Loadgen) uint64 {
	var n uint64
	for _, g := range gens {
		n += g.Stats().ResponsesOK
	}
	return n
}
