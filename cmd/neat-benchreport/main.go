// Command neat-benchreport produces the committed benchmark snapshot: it
// runs the micro-benchmarks (ns/op, B/op, allocs/op), times a full
// `neat-bench -quick` wall-clock run, measures the PDES worker-scaling
// ladder, and writes the result as JSON. The `make bench` target drives
// it; the output file is committed so PRs carry a before/after record.
//
// `neat-benchreport -delta` compares the two most recent committed
// snapshots (numeric suffix order: BENCH_pr9.json before BENCH_pr10.json)
// — or exactly the two files given as arguments — and prints the ns/op,
// allocs/op and wall-clock movement per benchmark.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"neat/internal/experiments"
)

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Extra carries benchmark-specific ReportMetric values (e.g.
	// sim-events for the simulator throughput benchmark).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// scalingRow is one point of the PDES worker-scaling ladder: the same
// quick farm simulation (same seed) timed end to end. workers == 0 is the
// sequential global event loop; speedup is relative to workers == 1 and
// only exceeds 1.0 when the host has CPUs to spread the workers over.
type scalingRow struct {
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_seconds"`
	Speedup     float64 `json:"speedup_vs_1_worker,omitempty"`
	TotalKRPS   float64 `json:"total_krps"`
}

// clusterRow is one rung of the cluster campaign's connection ladder:
// the default 3-farm topology at a per-generator connection count, with
// the aggregate concurrent-connection total across all generators.
type clusterRow struct {
	ConnsPerGen int     `json:"conns_per_gen"`
	Aggregate   int     `json:"aggregate_conns"`
	TotalKRPS   float64 `json:"total_krps"`
	Errors      uint64  `json:"errors"`
	MeanLatNs   int64   `json:"mean_latency_ns"`
	P99LatNs    int64   `json:"p99_latency_ns"`
}

// connScaleRow is one rung of the connection-scale ladder: a single replica
// engine holding N established connections, each with an armed idle timer.
// PendingEvents stays O(wheel levels) regardless of N when the hierarchical
// timer wheel is the backend; the event backend would hold one calendar
// event per armed timer. The 1M rung is covered by BenchmarkMillionConns in
// the benchmarks section; the ladder here stops at 100k to keep snapshot
// wall time sane.
type connScaleRow struct {
	Conns         int     `json:"conns"`
	Backend       string  `json:"backend"`
	Established   int     `json:"established"`
	PendingEvents int     `json:"pending_events"`
	PendingTimers int     `json:"pending_timers"`
	Cascades      uint64  `json:"cascades,omitempty"`
	BytesPerConn  float64 `json:"bytes_per_conn"`
	WallSeconds   float64 `json:"wall_seconds"`
	PDESIdentical bool    `json:"pdes_identical,omitempty"`
}

type report struct {
	Generated     string         `json:"generated"`
	GoVersion     string         `json:"go_version"`
	HostCPUs      int            `json:"host_cpus"`
	Benchmarks    []benchResult  `json:"benchmarks"`
	QuickWallSecs float64        `json:"neat_bench_quick_wall_seconds"`
	PDESScaling   []scalingRow   `json:"pdes_scaling,omitempty"`
	ClusterLadder []clusterRow   `json:"cluster_ladder,omitempty"`
	ConnScale     []connScaleRow `json:"conn_scale_ladder,omitempty"`
}

// benchSets lists (package, -bench pattern) pairs to run. The root package
// only contributes the engine-throughput benchmark; its figure-reproduction
// benchmarks are full experiments and far too slow for a snapshot.
var benchSets = [][2]string{
	{".", "^BenchmarkSimulatorThroughput$"},
	{"./internal/sim", "."},
	{"./internal/proto", "."},
	{"./internal/bufpool", "."},
	{"./internal/wire", "."},
	// The million-connection rung of the conn-scale campaign: one engine,
	// 1M established conns, 1M armed timers, O(levels) calendar events.
	{"./internal/experiments", "^BenchmarkMillionConns$"},
}

func main() {
	out := flag.String("out", "BENCH_pr10.json", "output JSON path")
	delta := flag.Bool("delta", false,
		"compare the two most recent BENCH_*.json snapshots (or the two files passed as arguments) instead of generating a new one")
	flag.Parse()

	if *delta {
		if err := runDelta(flag.Args()); err != nil {
			fatal(err)
		}
		return
	}

	rep := report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: strings.TrimSpace(runOrDie("go", "version")),
		HostCPUs:  runtime.NumCPU(),
	}
	for _, set := range benchSets {
		txt := runOrDie("go", "test", "-run", "^$", "-bench", set[1], "-benchmem", set[0])
		rep.Benchmarks = append(rep.Benchmarks, parseBench(txt)...)
	}

	tmp, err := os.MkdirTemp("", "neatbench")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "neat-bench")
	runOrDie("go", "build", "-o", bin, "./cmd/neat-bench")
	start := time.Now()
	runOrDie(bin, "-quick")
	rep.QuickWallSecs = time.Since(start).Seconds()

	points, err := experiments.PDESScalingLadder(
		experiments.Options{Quick: true, Seed: 1}, []int{0, 1, 2, 4})
	if err != nil {
		fatal(fmt.Errorf("pdes scaling ladder: %w", err))
	}
	var base float64
	for _, p := range points {
		if p.Workers == 1 {
			base = p.WallSeconds
		}
	}
	for _, p := range points {
		row := scalingRow{Workers: p.Workers, WallSeconds: p.WallSeconds, TotalKRPS: p.KRPS}
		if p.Workers >= 1 && base > 0 {
			row.Speedup = base / p.WallSeconds
		}
		rep.PDESScaling = append(rep.PDESScaling, row)
	}

	cpoints, err := experiments.ClusterLadder(
		experiments.Options{Quick: true, Seed: 1}, []int{2, 4, 8}, 1)
	if err != nil {
		fatal(fmt.Errorf("cluster ladder: %w", err))
	}
	for _, p := range cpoints {
		rep.ClusterLadder = append(rep.ClusterLadder, clusterRow{
			ConnsPerGen: p.ConnsPerGen,
			Aggregate:   p.Aggregate,
			TotalKRPS:   p.KRPS,
			Errors:      p.Errors,
			MeanLatNs:   int64(p.MeanLat),
			P99LatNs:    int64(p.P99Lat),
		})
	}

	for _, p := range experiments.ConnScaleLadder(
		experiments.Options{Quick: true, Seed: 1}, []int{10_000, 100_000}) {
		rep.ConnScale = append(rep.ConnScale, connScaleRow{
			Conns:         p.Conns,
			Backend:       p.Backend,
			Established:   p.Established,
			PendingEvents: p.PendingEvents,
			PendingTimers: p.PendingTimers,
			Cascades:      p.Cascades,
			BytesPerConn:  p.BytesPerConn,
			WallSeconds:   p.WallSeconds,
			PDESIdentical: p.PDESIdentical,
		})
	}

	j, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	j = append(j, '\n')
	if err := os.WriteFile(*out, j, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks, quick wall %.2fs)\n",
		*out, len(rep.Benchmarks), rep.QuickWallSecs)
}

// parseBench extracts result lines of the form
//
//	BenchmarkName-8  	  10	105571356 ns/op	14790996 B/op	167213 allocs/op
//
// including any extra ReportMetric columns ("250184 sim-events").
func parseBench(out string) []benchResult {
	var res []benchResult
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		r := benchResult{Name: strings.TrimSuffix(fields[0], " ")}
		if i := strings.IndexByte(r.Name, '-'); i > 0 {
			r.Name = r.Name[:i] // strip the -GOMAXPROCS suffix
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			default:
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[fields[i+1]] = v
			}
		}
		res = append(res, r)
	}
	return res
}

func runOrDie(name string, args ...string) string {
	cmd := exec.Command(name, args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fatal(fmt.Errorf("%s %s: %w", name, strings.Join(args, " "), err))
	}
	return buf.String()
}

// runDelta diffs two snapshots: the pair passed as args, or the two most
// recent BENCH_*.json in the working directory (ordered by the numeric
// suffix in the file name, so pr10 follows pr9; non-numeric names sort
// lexically before numeric ones).
func runDelta(args []string) error {
	var oldPath, newPath string
	switch len(args) {
	case 2:
		oldPath, newPath = args[0], args[1]
	case 0:
		snaps, err := filepath.Glob("BENCH_*.json")
		if err != nil || len(snaps) < 2 {
			return fmt.Errorf("need at least two BENCH_*.json snapshots to diff (found %d)", len(snaps))
		}
		sort.Slice(snaps, func(i, j int) bool {
			ni, oki := snapshotSeq(snaps[i])
			nj, okj := snapshotSeq(snaps[j])
			if oki != okj {
				return !oki // non-numeric names first (oldest)
			}
			if oki && ni != nj {
				return ni < nj
			}
			return snaps[i] < snaps[j]
		})
		oldPath, newPath = snaps[len(snaps)-2], snaps[len(snaps)-1]
	default:
		return fmt.Errorf("-delta takes zero or exactly two snapshot paths, got %d", len(args))
	}

	var oldRep, newRep report
	for _, l := range []struct {
		path string
		into *report
	}{{oldPath, &oldRep}, {newPath, &newRep}} {
		raw, err := os.ReadFile(l.path)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(raw, l.into); err != nil {
			return fmt.Errorf("%s: %w", l.path, err)
		}
	}

	fmt.Printf("delta %s -> %s\n\n", oldPath, newPath)
	fmt.Printf("%-34s %14s %14s %8s %12s %12s %8s\n",
		"benchmark", "ns/op old", "ns/op new", "Δ", "allocs old", "allocs new", "Δ")
	prev := map[string]benchResult{}
	for _, b := range oldRep.Benchmarks {
		prev[b.Name] = b
	}
	for _, b := range newRep.Benchmarks {
		o, ok := prev[b.Name]
		if !ok {
			fmt.Printf("%-34s %14s %14.0f %8s %12s %12d %8s\n",
				b.Name, "-", b.NsPerOp, "new", "-", b.AllocsPerOp, "new")
			continue
		}
		fmt.Printf("%-34s %14.0f %14.0f %8s %12d %12d %8s\n",
			b.Name, o.NsPerOp, b.NsPerOp, pct(o.NsPerOp, b.NsPerOp),
			o.AllocsPerOp, b.AllocsPerOp,
			pct(float64(o.AllocsPerOp), float64(b.AllocsPerOp)))
		delete(prev, b.Name)
	}
	for name := range prev {
		fmt.Printf("%-34s (dropped from %s)\n", name, newPath)
	}
	fmt.Printf("\nneat-bench -quick wall: %.2fs -> %.2fs %s\n",
		oldRep.QuickWallSecs, newRep.QuickWallSecs,
		pct(oldRep.QuickWallSecs, newRep.QuickWallSecs))
	return nil
}

// snapshotSeq extracts the trailing integer of a BENCH_<name><N>.json file
// name (ok=false when there is none).
func snapshotSeq(path string) (int, bool) {
	base := strings.TrimSuffix(filepath.Base(path), ".json")
	i := len(base)
	for i > 0 && base[i-1] >= '0' && base[i-1] <= '9' {
		i--
	}
	if i == len(base) {
		return 0, false
	}
	n, err := strconv.Atoi(base[i:])
	return n, err == nil
}

// pct renders the relative movement from old to new ("-12.3%"; "=" for no
// change, "?" when the old value is zero).
func pct(old, new float64) string {
	if old == new {
		return "="
	}
	if old == 0 {
		return "?"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "neat-benchreport:", err)
	os.Exit(1)
}
