// Command neat-bench regenerates every table and figure of the paper's
// evaluation (§6) and prints them with the paper's reported numbers
// alongside. Expect a few minutes of wall-clock time for the full run;
// -quick trades precision for speed.
//
// Usage:
//
//	neat-bench [-quick] [-seed N] [-only table1|fig4|fig5|fig7|fig9|fig11|fig12|table2|table3|fig13]
//	neat-bench -breakdown          # traced run: per-hop latency breakdown tables
//	neat-bench -steering           # placement policy × workload skew comparison
//	neat-bench -attack             # hostile clients vs guarded replicas
//	neat-bench -cluster [-scale N] # datacenter campaign: L4-balanced farms behind a switch
//	neat-bench -connscale          # connection-scale ladder: ~1M conns on one replica engine
//	neat-bench -ipc                # IPC fast path: message rings, per-message vs coalesced wakes
package main

import (
	"flag"
	"strings"

	"neat/internal/cliutil"
	"neat/internal/experiments"
)

func main() {
	ef := cliutil.Experiment(1)
	only := flag.String("only", "", "run a single experiment (table1, fig4, fig5, fig7, fig9, fig11, fig12, table2, table3, fig13)")
	breakdown := flag.Bool("breakdown", false, "run the traced per-hop latency breakdown instead of the paper tables")
	steering := flag.Bool("steering", false, "run the placement-policy steering campaign instead of the paper tables")
	attack := flag.Bool("attack", false, "run the goodput-under-attack campaign instead of the paper tables")
	cluster := flag.Bool("cluster", false, "run the cluster campaign: multi-machine farms behind a switch/L4 tier (combine with -scale and -pdes)")
	connscale := flag.Bool("connscale", false, "run the connection-scale ladder: up to ~1M established conns on one replica's engine, wheel vs event timer backends")
	ipcfp := flag.Bool("ipc", false, "run the IPC fast-path campaign: message-ring activity under per-message vs coalesced wakes across pipeline shapes (combine with -pdes)")
	flag.Parse()
	defer ef.StartProfiles()()

	o := ef.Options()
	drivers := map[string]func(experiments.Options) *experiments.Result{
		"table1": experiments.Table1,
		"fig4":   experiments.Figure4,
		"fig5":   experiments.Figure5,
		"fig7":   experiments.Figure7,
		"fig9":   experiments.Figure9,
		"fig11":  experiments.Figure11,
		"fig12":  experiments.Figure12,
		"table2": experiments.Table2,
		"table3": experiments.Table3,
		"fig13":  experiments.Figure13,
		// Not part of the default run: tracing is opt-in, and the paper
		// tables above are measured untraced.
		"breakdown": experiments.LatencyBreakdown,
		// Not part of the default run: the steering campaign measures the
		// placement-plane extension, not a figure of the paper.
		"steering": experiments.SteeringSkew,
		// Not part of the default run: the adversarial campaign measures
		// the resource-guard extension under hostile clients.
		"attack": experiments.GoodputUnderAttack,
		// Not part of the default run: the cluster campaign measures the
		// multi-machine topology, not a figure of the paper.
		"cluster": experiments.ClusterScale,
		// Not part of the default run: the connection-scale ladder measures
		// the million-connection engine refactor (timer wheel + pooled PCBs).
		"connscale": experiments.ConnScale,
		// Not part of the default run: the IPC campaign measures the modeled
		// message rings and wake coalescing, not a figure of the paper.
		"ipc": experiments.IPCFastPath,
		// Not part of the default run: the PDES benches measure the
		// simulator itself, not the paper. Combine with -pdes N.
		"pdesfarm":  experiments.PDESFarm,
		"pdesscale": experiments.PDESScaling,
	}

	switch {
	case *breakdown:
		cliutil.Emit(experiments.LatencyBreakdown(o))
	case *steering:
		cliutil.Emit(experiments.SteeringSkew(o))
	case *attack:
		cliutil.Emit(experiments.GoodputUnderAttack(o))
	case *cluster:
		cliutil.Emit(experiments.ClusterScale(o))
	case *connscale:
		cliutil.Emit(experiments.ConnScale(o))
	case *ipcfp:
		cliutil.Emit(experiments.IPCFastPath(o))
	case *only != "":
		fn, ok := drivers[strings.ToLower(*only)]
		if !ok {
			cliutil.Fail("unknown experiment %q", *only)
		}
		cliutil.Emit(fn(o))
	default:
		cliutil.EmitAll(experiments.All(o))
	}
}
