// Command neat-bench regenerates every table and figure of the paper's
// evaluation (§6) and prints them with the paper's reported numbers
// alongside. Expect a few minutes of wall-clock time for the full run;
// -quick trades precision for speed.
//
// Usage:
//
//	neat-bench [-quick] [-seed N] [-only table1|fig4|fig5|fig7|fig9|fig11|fig12|table2|table3|fig13]
//	neat-bench -breakdown          # traced run: per-hop latency breakdown tables
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"neat/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "shorter warmup/measurement windows and fewer fault-injection runs")
	seed := flag.Int64("seed", 1, "simulation seed")
	only := flag.String("only", "", "run a single experiment (table1, fig4, fig5, fig7, fig9, fig11, fig12, table2, table3, fig13)")
	parallel := flag.Bool("parallel", true, "measure independent sweep points concurrently (output is identical either way)")
	workers := flag.Int("workers", 0, "worker count for -parallel (default GOMAXPROCS)")
	breakdown := flag.Bool("breakdown", false, "run the traced per-hop latency breakdown instead of the paper tables")
	flag.Parse()

	o := experiments.Options{Quick: *quick, Seed: *seed, Parallel: *parallel, Workers: *workers}
	drivers := map[string]func(experiments.Options) *experiments.Result{
		"table1": experiments.Table1,
		"fig4":   experiments.Figure4,
		"fig5":   experiments.Figure5,
		"fig7":   experiments.Figure7,
		"fig9":   experiments.Figure9,
		"fig11":  experiments.Figure11,
		"fig12":  experiments.Figure12,
		"table2": experiments.Table2,
		"table3": experiments.Table3,
		"fig13":  experiments.Figure13,
		// Not part of the default run: tracing is opt-in, and the paper
		// tables above are measured untraced.
		"breakdown": experiments.LatencyBreakdown,
	}

	if *breakdown {
		fmt.Print(experiments.LatencyBreakdown(o).String())
		return
	}
	if *only != "" {
		fn, ok := drivers[strings.ToLower(*only)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
			os.Exit(2)
		}
		fmt.Print(fn(o).String())
		return
	}
	for _, res := range experiments.All(o) {
		fmt.Print(res.String())
		fmt.Println()
	}
}
