module neat

go 1.22
