// Checkpointing: the stateful-recovery alternative the paper discusses
// (§2.1, §6.6) but deliberately does not adopt.
//
// With CheckpointInterval set, every replica periodically snapshots its
// TCP state; after a TCP crash the new incarnation restores the snapshot
// and existing connections SURVIVE — at a run-time throughput cost and
// with an exposure window (anything newer than the snapshot is lost).
// This example crashes the same replica twice: once with stateless
// recovery, once with checkpointing, and prints the difference.
//
// Run with: go run ./examples/checkpointing
package main

import (
	"fmt"

	"neat"
	"neat/internal/ipc"
	"neat/internal/sim"
	"neat/internal/socketlib"
	"neat/internal/stack"
	"neat/internal/tcpeng"
	"neat/internal/testbed"
)

func main() {
	fmt.Println("replica crash with 12 held connections, two recovery strategies:")
	fmt.Println()
	for _, mode := range []struct {
		label    string
		interval sim.Time
	}{
		{"stateless recovery (the paper's design, §3.6)", 0},
		{"checkpointed recovery (10 ms interval)", 10 * sim.Millisecond},
	} {
		lost, restored, appFailures := run(mode.interval)
		fmt.Printf("%-48s lost=%d restored=%d app-visible failures=%d\n",
			mode.label, lost, restored, appFailures)
	}
	fmt.Println()
	fmt.Println("the price: see BenchmarkAblationCheckpointing (~20% throughput on a saturated replica)")
}

func run(interval sim.Time) (lost, restored uint64, appFailures int) {
	net := neat.NewNetwork(21)
	server := neat.NewServerMachine(net, neat.AMD12)
	client := neat.NewClientMachine(net, 2)
	sys, err := server.BuildNEaT(client, testbed.NEaTConfig{
		Kind: stack.Multi, TCP: tcpeng.DefaultConfig(),
		Slots:              testbed.MultiSlots(2, 2),
		Syscall:            testbed.ThreadLoc{Core: 1},
		CheckpointInterval: interval,
	})
	if err != nil {
		panic(err)
	}
	clisys, err := neat.StartClientSystem(client, server, 2)
	if err != nil {
		panic(err)
	}

	// Server app: accept and hold.
	failures := 0
	srv := newApp(server.AppThread(7), sys.SyscallProc())
	srv.onStart = func(ctx *sim.Context, lib *socketlib.Lib) {
		ln := lib.Listen(ctx, 9000, 64)
		ln.OnAccept = func(ctx *sim.Context, s *socketlib.Socket) {
			s.OnClosed = func(ctx *sim.Context, reset bool, err error) {
				if reset {
					failures++
				}
			}
		}
	}
	srv.proc.Deliver("start")
	net.Sim.RunFor(sim.Millisecond)

	// Client app: 12 long-lived connections.
	cli := newApp(client.AppThread(7), clisys.SyscallProc())
	cli.onStart = func(ctx *sim.Context, lib *socketlib.Lib) {
		for i := 0; i < 12; i++ {
			lib.Connect(ctx, server.IP, 9000)
		}
	}
	cli.proc.Deliver("start")
	net.Sim.RunFor(100 * sim.Millisecond) // connections up, checkpoints taken

	victim := sys.Replicas()[0]
	if victim.TCP().NumConns() == 0 {
		victim = sys.Replicas()[1]
	}
	victim.SockProc().Crash(sim.ErrKilled)
	net.Sim.RunFor(300 * sim.Millisecond)

	st := sys.Stats()
	return st.ConnectionsLost, st.ConnectionsRestored, failures
}

// app is a minimal event-driven application shell.
type app struct {
	proc    *sim.Proc
	lib     *socketlib.Lib
	onStart func(*sim.Context, *socketlib.Lib)
}

func newApp(th *sim.HWThread, syscall *sim.Proc) *app {
	a := &app{}
	a.proc = sim.NewProc(th, "app", a, sim.ProcConfig{})
	a.lib = socketlib.New(a.proc, syscall, ipc.DefaultCosts())
	return a
}

func (a *app) HandleMessage(ctx *sim.Context, msg sim.Message) {
	ctx.Charge(300)
	if a.lib.HandleEvent(ctx, msg) {
		return
	}
	if msg == "start" && a.onStart != nil {
		a.onStart(ctx, a.lib)
	}
}
