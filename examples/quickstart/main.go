// Quickstart: the smallest complete NEaT program.
//
// It builds the simulated two-machine testbed, boots a NEaT stack with two
// replicas on the server, and runs a TCP echo exchange through the full
// path — socket library → SYSCALL server → replica → NIC → 10G wire → and
// back — printing what happened.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"neat"
	"neat/internal/ipc"
	"neat/internal/sim"
	"neat/internal/socketlib"
)

func main() {
	// The whole testbed as one declared value: a deterministic simulation
	// (same seed, same run, byte for byte) of an AMD server facing a
	// generously provisioned client over a 10G link. NEaT on the server:
	// 2 single-component replicas (cores 2-3), the SYSCALL server on core
	// 1, the NIC driver on core 0. Observe attaches the tracing layer so
	// we can ask where the echo's time went.
	tb, err := neat.TopologyConfig{
		Seed:   1,
		System: neat.SystemConfig{Replicas: 2, Observe: true},
	}.Build()
	if err != nil {
		panic(err)
	}
	net, server, client := tb.Net, tb.Server, tb.Client
	sys, clisys := tb.System, tb.ClientSystem

	// An echo server application. Applications are event-driven processes;
	// the socket library hides the replication entirely (§3.2).
	srvProc := &echoServer{}
	srvProc.proc = sim.NewProc(server.AppThread(5), "echo-server", srvProc, sim.ProcConfig{})
	srvProc.lib = socketlib.New(srvProc.proc, sys.SyscallProc(), ipc.DefaultCosts())
	srvProc.proc.Deliver("listen")

	cliProc := &echoClient{}
	cliProc.proc = sim.NewProc(client.AppThread(4), "echo-client", cliProc, sim.ProcConfig{})
	cliProc.lib = socketlib.New(cliProc.proc, clisys.SyscallProc(), ipc.DefaultCosts())

	net.Sim.RunFor(neat.Millisecond) // let the listen replicate
	cliProc.proc.Deliver("start")
	net.Sim.RunFor(100 * neat.Millisecond)

	fmt.Printf("replicas used by the listening socket: %d subsockets\n", len(sys.Replicas()))
	fmt.Printf("echo reply received: %q\n", cliProc.got)
	fmt.Printf("simulated time: %v, events: %d\n", net.Sim.Now(), net.Sim.EventsRun())

	// The observability API: System.Metrics() pulls every counter of the
	// running system into a registry, and System.Trace() holds the per-hop
	// latency breakdown recorded since boot.
	reg := sys.Metrics()
	fmt.Printf("NIC frames rx/tx: %d/%d, driver dispatches: %d\n",
		reg.Counter("nic.rx_frames").Value(), reg.Counter("nic.tx_frames").Value(),
		reg.Counter("driver.rx_dispatched").Value())
	fmt.Println()
	fmt.Print(sys.Trace().Breakdown().Filter("amd.").
		Table("per-hop latency on the server (queueing vs processing)").String())
}

type echoServer struct {
	proc *sim.Proc
	lib  *socketlib.Lib
}

func (e *echoServer) HandleMessage(ctx *sim.Context, msg sim.Message) {
	ctx.Charge(500)
	if e.lib.HandleEvent(ctx, msg) {
		return
	}
	if msg == "listen" {
		ln := e.lib.Listen(ctx, 7777, 16)
		ln.OnAccept = func(ctx *sim.Context, s *socketlib.Socket) {
			fmt.Printf("server: accepted connection from %v:%d\n", s.RemoteAddr, s.RemotePort)
			s.OnData = func(ctx *sim.Context, data []byte, eof bool) {
				if len(data) > 0 {
					fmt.Printf("server: echoing %q\n", data)
					s.Send(ctx, data)
				}
				if eof {
					s.Close(ctx)
				}
			}
		}
	}
}

type echoClient struct {
	proc *sim.Proc
	lib  *socketlib.Lib
	got  string
}

func (e *echoClient) HandleMessage(ctx *sim.Context, msg sim.Message) {
	ctx.Charge(500)
	if e.lib.HandleEvent(ctx, msg) {
		return
	}
	if msg == "start" {
		s := e.lib.Connect(ctx, neat.IPv4(10, 0, 0, 1), 7777)
		s.OnConnect = func(ctx *sim.Context, err error) {
			if err != nil {
				fmt.Println("client: connect failed:", err)
				return
			}
			fmt.Println("client: connected, sending greeting")
			s.Send(ctx, []byte("hello, NEaT!"))
		}
		s.OnData = func(ctx *sim.Context, data []byte, eof bool) {
			e.got += string(data)
			if len(e.got) >= len("hello, NEaT!") {
				s.Close(ctx)
			}
		}
	}
}
