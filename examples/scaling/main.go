// Scaling: §3.4's dynamic replica management.
//
// The system boots with one replica, detects overload (its core pegged at
// 100 %), spawns new replicas one by one, and finally scales down using
// lazy termination — the terminating replica leaves the RSS set, keeps
// serving its existing connections, and is garbage-collected once its
// connection count drops to zero.
//
// Run with: go run ./examples/scaling
package main

import (
	"fmt"

	"neat"
	"neat/internal/app"
	"neat/internal/ipc"
	"neat/internal/sim"
)

func main() {
	// Four slots, only one active at boot (Tune retires three before the
	// client side boots). Observe records the lifecycle timeline: every
	// scale-up, RSS rebind and lazy collection below shows up as a
	// timestamped event.
	tb, err := neat.TopologyConfig{
		Seed:         5,
		ClientStacks: 4,
		System:       neat.SystemConfig{Replicas: 4, Observe: true},
		Tune: func(sys *neat.System) error {
			for i := 0; i < 3; i++ {
				if err := sys.ScaleDown(); err != nil {
					return err
				}
			}
			return nil
		},
	}.Build()
	if err != nil {
		panic(err)
	}
	net, server, client := tb.Net, tb.Server, tb.Client
	sys, clisys := tb.System, tb.ClientSystem

	// Heavy web load: 4 lighttpd instances, far more than one replica can
	// serve.
	var gens []*app.Loadgen
	for i := 0; i < 4; i++ {
		h := app.NewHTTPD(server.AppThread(6+i), fmt.Sprintf("web%d", i),
			sys.SyscallProc(), ipc.DefaultCosts(), app.HTTPDConfig{
				Port: uint16(8000 + i), Files: map[string]int{"/f": 20},
			})
		h.Start()
		lg := app.NewLoadgen(client.AppThread(6+i), fmt.Sprintf("gen%d", i),
			clisys.SyscallProc(), ipc.DefaultCosts(), app.LoadgenConfig{
				Target: server.IP, Port: uint16(8000 + i), URI: "/f",
				Conns: 24, ReqPerConn: 100,
			})
		gens = append(gens, lg)
	}
	net.Sim.RunFor(2 * sim.Millisecond)
	for _, g := range gens {
		g.Start()
	}

	measure := func() (krps float64, stackUtil float64) {
		sampler := neat.NewCPUSampler(server)
		for _, g := range gens {
			g.BeginMeasure()
		}
		window := 80 * sim.Millisecond
		net.Sim.RunFor(window)
		var good uint64
		for _, g := range gens {
			good += g.GoodResponses()
		}
		// Utilization of the busiest replica thread (cores 2..5).
		u := sampler.Utilization()
		for c := 2; c <= 5; c++ {
			if u[c] > stackUtil {
				stackUtil = u[c]
			}
		}
		return float64(good) / window.Seconds() / 1000, stackUtil
	}

	fmt.Println("replicas   krps    busiest-replica-core")
	fmt.Println("--------   -----   --------------------")
	net.Sim.RunFor(30 * sim.Millisecond)
	for {
		krps, util := measure()
		fmt.Printf("%8d   %5.1f   %19.0f%%\n", sys.NumActive(), krps, util*100)
		// Overload policy (§3.4): spawn another replica while the
		// existing ones are saturated.
		if util < 0.95 {
			break
		}
		if _, err := sys.ScaleUp(); err != nil {
			break // out of slots
		}
	}

	fmt.Println("\nscaling down two replicas (lazy termination)...")
	sys.ScaleDown()
	sys.ScaleDown()
	fmt.Printf("slot states right after:  %v\n", sys.SlotStates())
	net.Sim.RunFor(400 * sim.Millisecond)
	fmt.Printf("after connections drained: %v (%d PCBs live incl. TIME_WAIT)\n",
		sys.SlotStates(), sys.TotalConns())
	krps, _ := measure()
	fmt.Printf("rate with %d replica(s):   %.1f krps — existing connections never broke\n",
		sys.NumActive(), krps)

	fmt.Println()
	fmt.Print(neat.Timeline(sys.Trace().Events(), "lifecycle event timeline").String())
}
