// Webfarm: the paper's evaluation scenario in miniature (§6.3).
//
// A NEaT stack with three single-component replicas serves an increasing
// number of lighttpd instances, each driven by an httperf-like load
// generator requesting a 20-byte file 100 times per connection. The output
// is the scaling curve of Figure 7's "NEaT 3x" series.
//
// Run with: go run ./examples/webfarm
package main

import (
	"fmt"

	"neat"
	"neat/internal/app"
	"neat/internal/ipc"
	"neat/internal/sim"
)

func main() {
	fmt.Println("lighttpd instances vs request rate (NEaT 3x on the simulated 12-core AMD):")
	fmt.Println()
	fmt.Println("#webs   krps    errors")
	fmt.Println("-----   -----   ------")
	var breakdown neat.Breakdown
	for webs := 1; webs <= 6; webs++ {
		// Trace the largest farm: the breakdown shows where a request's
		// time goes at full load. The smaller runs stay untraced (tracing
		// is opt-in and free when off).
		krps, errs, bd := runFarm(webs, webs == 6)
		breakdown = bd
		fmt.Printf("%5d   %5.1f   %6d\n", webs, krps, errs)
	}
	fmt.Println()
	fmt.Println("paper reference (Figure 7): NEaT 3x scales to 6 instances at ≈302 krps")
	fmt.Println()
	fmt.Print(breakdown.Filter("amd.").
		Table("per-hop latency at 6 instances (queueing vs processing)").String())
}

// runFarm builds a fresh deterministic testbed with the given number of
// lighttpd instances and measures the request rate.
func runFarm(webs int, observe bool) (krps float64, errors uint64, bd neat.Breakdown) {
	tb, err := neat.TopologyConfig{
		Seed:         42,
		ClientStacks: webs,
		System:       neat.SystemConfig{Replicas: 3, Observe: observe},
	}.Build()
	if err != nil {
		panic(err)
	}
	net, server, client := tb.Net, tb.Server, tb.Client
	sys, clisys := tb.System, tb.ClientSystem

	var gens []*app.Loadgen
	for i := 0; i < webs; i++ {
		h := app.NewHTTPD(server.AppThread(5+i), fmt.Sprintf("lighttpd%d", i),
			sys.SyscallProc(), ipc.DefaultCosts(), app.HTTPDConfig{
				Port: uint16(8000 + i), Files: map[string]int{"/f20": 20},
				CyclesPerRequest: 36000,
			})
		h.Start()
		lg := app.NewLoadgen(client.AppThread(2+webs+i), fmt.Sprintf("httperf%d", i),
			clisys.SyscallProc(), ipc.DefaultCosts(), app.LoadgenConfig{
				Target: server.IP, Port: uint16(8000 + i), URI: "/f20",
				Conns: 24, ReqPerConn: 100,
			})
		gens = append(gens, lg)
	}
	net.Sim.RunFor(2 * sim.Millisecond)
	for _, g := range gens {
		g.Start()
	}
	net.Sim.RunFor(40 * sim.Millisecond) // warmup
	for _, g := range gens {
		g.BeginMeasure()
	}
	window := 100 * sim.Millisecond
	net.Sim.RunFor(window)

	var good uint64
	for _, g := range gens {
		good += g.GoodResponses()
		errors += g.Stats().ConnErrors
	}
	if observe {
		bd = sys.Trace().Breakdown()
	}
	return float64(good) / window.Seconds() / 1000, errors, bd
}
