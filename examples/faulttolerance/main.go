// Faulttolerance: the reliability story of §3.6 and §6.6.
//
// A NEaT stack with two multi-component replicas serves long-lived
// connections. We inject two faults:
//
//  1. into the (stateless) IP process of a replica — recovery is fully
//     transparent, every connection survives;
//  2. into the TCP process — that replica's connections are lost, the
//     other replica's connections are completely unaffected, and the
//     respawned replica serves new connections immediately.
//
// Run with: go run ./examples/faulttolerance
package main

import (
	"fmt"

	"neat"
	"neat/internal/ipc"
	"neat/internal/sim"
	"neat/internal/socketlib"
)

func main() {
	net := neat.NewNetwork(9)
	server := neat.NewServerMachine(net, neat.AMD12)
	client := neat.NewClientMachine(net, 2)

	sys, err := neat.StartNEaT(server, client, neat.SystemConfig{
		Replicas: 2, Kind: neat.MultiComponent,
	})
	if err != nil {
		panic(err)
	}
	clisys, err := neat.StartClientSystem(client, server, 2)
	if err != nil {
		panic(err)
	}

	// Server app: accepts and holds connections, echoing heartbeats.
	srv := newHolder(server.AppThread(7), sys.SyscallProc(), true)
	srv.proc.Deliver("listen")
	net.Sim.RunFor(sim.Millisecond)

	// Client app: open 12 long-lived connections and heartbeat on them.
	cli := newHolder(client.AppThread(8), clisys.SyscallProc(), false)
	for i := 0; i < 12; i++ {
		cli.proc.Deliver("connect")
	}
	net.Sim.RunFor(200 * sim.Millisecond)

	r0, r1 := sys.Replicas()[0], sys.Replicas()[1]
	fmt.Printf("established: %d connections — replica 0 owns %d, replica 1 owns %d\n",
		cli.open, r0.TCP().NumConns(), r1.TCP().NumConns())

	fmt.Println("\n-- fault 1: crashing the IP process of replica 0 (stateless component)")
	r0.EntryProc().Crash(sim.ErrKilled)
	net.Sim.RunFor(300 * sim.Millisecond)
	st := sys.Stats()
	fmt.Printf("   recoveries=%d transparent=%d connections lost=%d\n",
		st.Recoveries, st.TransparentRecov, st.ConnectionsLost)
	fmt.Printf("   heartbeats still flowing: %d echoes so far, %d connections open\n",
		cli.echoes, cli.open)

	fmt.Println("\n-- fault 2: crashing the TCP process of replica 0 (the stateful component)")
	lost := r0.TCP().NumConns()
	r0.SockProc().Crash(sim.ErrKilled)
	net.Sim.RunFor(300 * sim.Millisecond)
	st = sys.Stats()
	fmt.Printf("   recoveries=%d tcp-state-lost=%d connections lost=%d (replica 0 held %d)\n",
		st.Recoveries, st.TCPStateLost, st.ConnectionsLost, lost)
	fmt.Printf("   replica 1 untouched: still owns %d connections\n", r1.TCP().NumConns())

	fmt.Println("\n-- new connections after recovery land on both replicas again")
	for i := 0; i < 6; i++ {
		cli.proc.Deliver("connect")
	}
	net.Sim.RunFor(300 * sim.Millisecond)
	fmt.Printf("   open connections: %d (replica 0: %d, replica 1: %d)\n",
		cli.open, sys.Replicas()[0].TCP().NumConns(), r1.TCP().NumConns())
	fmt.Printf("\nASLR: replica 0's address-space seed changed across respawn (re-randomization, §3.8)\n")
}

// holder is a minimal app that opens/accepts long-lived heartbeat conns.
type holder struct {
	proc   *sim.Proc
	lib    *socketlib.Lib
	isSrv  bool
	open   int
	echoes int
}

func newHolder(th *sim.HWThread, syscall *sim.Proc, isSrv bool) *holder {
	h := &holder{isSrv: isSrv}
	h.proc = sim.NewProc(th, "holder", h, sim.ProcConfig{})
	h.lib = socketlib.New(h.proc, syscall, ipc.DefaultCosts())
	return h
}

func (h *holder) HandleMessage(ctx *sim.Context, msg sim.Message) {
	ctx.Charge(300)
	if h.lib.HandleEvent(ctx, msg) {
		return
	}
	switch msg {
	case "listen":
		ln := h.lib.Listen(ctx, 9000, 64)
		ln.OnAccept = func(ctx *sim.Context, s *socketlib.Socket) {
			s.OnData = func(ctx *sim.Context, data []byte, eof bool) {
				if len(data) > 0 {
					s.Send(ctx, data) // echo heartbeat
				}
			}
		}
	case "connect":
		s := h.lib.Connect(ctx, neat.IPv4(10, 0, 0, 1), 9000)
		s.OnConnect = func(ctx *sim.Context, err error) {
			if err != nil {
				return
			}
			h.open++
			h.heartbeat(ctx, s)
		}
		s.OnData = func(ctx *sim.Context, data []byte, eof bool) {
			h.echoes++
			ctx.TimerAfter(10*sim.Millisecond, s)
		}
		s.OnClosed = func(ctx *sim.Context, reset bool, err error) { h.open-- }
	default:
		if s, ok := msg.(*socketlib.Socket); ok {
			h.heartbeat(ctx, s)
		}
	}
}

func (h *holder) heartbeat(ctx *sim.Context, s *socketlib.Socket) {
	s.Send(ctx, []byte("ping"))
}
