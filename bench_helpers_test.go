package neat

import (
	"fmt"
	"testing"

	"neat/internal/app"
	"neat/internal/core"
	"neat/internal/ipc"
	"neat/internal/sim"
	"neat/internal/tcpeng"
	"neat/internal/testbed"
)

// defaultTCP is the engine configuration used by the ablation benches.
func defaultTCP() tcpeng.Config { return tcpeng.DefaultConfig() }

// runWeb attaches `webs` lighttpd+httperf pairs to an already-booted NEaT
// system, runs a short measured window and returns krps.
func runWeb(b *testing.B, n *testbed.Net, server, client *testbed.Host, sys *core.System, webs int) float64 {
	b.Helper()
	clisys, err := client.BuildClientSystem(server, webs, defaultTCP())
	if err != nil {
		b.Fatal(err)
	}
	var gens []*app.Loadgen
	base := server.Machine.NumCores() - webs
	for i := 0; i < webs; i++ {
		h := app.NewHTTPD(server.AppThread(base+i), fmt.Sprintf("web%d", i),
			sys.SyscallProc(), ipc.DefaultCosts(), app.HTTPDConfig{
				Port: uint16(8000 + i), Files: map[string]int{"/f": 20},
			})
		h.Start()
		lg := app.NewLoadgen(client.AppThread(2+webs+i), fmt.Sprintf("gen%d", i),
			clisys.SyscallProc(), ipc.DefaultCosts(), app.LoadgenConfig{
				Target: server.IP, Port: uint16(8000 + i), URI: "/f",
				Conns: 24, ReqPerConn: 100,
			})
		gens = append(gens, lg)
	}
	n.Sim.RunFor(2 * sim.Millisecond)
	for _, g := range gens {
		g.Start()
	}
	n.Sim.RunFor(25 * sim.Millisecond)
	for _, g := range gens {
		g.BeginMeasure()
	}
	window := 50 * sim.Millisecond
	n.Sim.RunFor(window)
	var good uint64
	for _, g := range gens {
		good += g.GoodResponses()
	}
	return float64(good) / window.Seconds() / 1000
}
