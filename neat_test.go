package neat_test

import (
	"testing"

	"neat"
	"neat/internal/ipc"
	"neat/internal/sim"
	"neat/internal/socketlib"
)

// TestPublicAPIRoundTrip exercises the facade the way the quickstart
// example does: boot both machines, run an echo exchange, verify the
// deterministic outcome.
func TestPublicAPIRoundTrip(t *testing.T) {
	net := neat.NewNetwork(123)
	server := neat.NewServerMachine(net, neat.AMD12)
	client := neat.NewClientMachine(net, 1)

	sys, err := neat.StartNEaT(server, client, neat.SystemConfig{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	clisys, err := neat.StartClientSystem(client, server, 1)
	if err != nil {
		t.Fatal(err)
	}

	var echoed string
	srv := apiApp(server.AppThread(5), sys.SyscallProc(), func(ctx *sim.Context, lib *socketlib.Lib) {
		ln := lib.Listen(ctx, 4000, 8)
		ln.OnAccept = func(ctx *sim.Context, s *socketlib.Socket) {
			s.OnData = func(ctx *sim.Context, data []byte, eof bool) {
				if len(data) > 0 {
					s.Send(ctx, data)
				}
			}
		}
	})
	srv.Deliver("go")
	net.Sim.RunFor(neat.Millisecond)

	cli := apiApp(client.AppThread(4), clisys.SyscallProc(), func(ctx *sim.Context, lib *socketlib.Lib) {
		s := lib.Connect(ctx, neat.IPv4(10, 0, 0, 1), 4000)
		s.OnConnect = func(ctx *sim.Context, err error) {
			if err == nil {
				s.Send(ctx, []byte("roundtrip"))
			}
		}
		s.OnData = func(ctx *sim.Context, data []byte, eof bool) { echoed += string(data) }
	})
	cli.Deliver("go")
	net.Sim.RunFor(50 * neat.Millisecond)

	if echoed != "roundtrip" {
		t.Fatalf("echoed %q", echoed)
	}
	if sys.TotalConns() == 0 {
		t.Fatal("no connection established on the NEaT side")
	}
}

// TestXeonModelAvailable covers the second machine model.
func TestXeonModelAvailable(t *testing.T) {
	net := neat.NewNetwork(5)
	server := neat.NewServerMachine(net, neat.Xeon8x2)
	client := neat.NewClientMachine(net, 1)
	if server.Machine.Core(0).NumThreads() != 2 {
		t.Fatal("Xeon should have 2 hardware threads per core")
	}
	sys, err := neat.StartNEaT(server, client, neat.SystemConfig{
		Replicas: 2, Kind: neat.MultiComponent, TSO: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Replicas()); got != 2 {
		t.Fatalf("replicas=%d", got)
	}
}

// apiApp builds a minimal event-driven app process around a socket lib.
func apiApp(th *sim.HWThread, syscall *sim.Proc, start func(*sim.Context, *socketlib.Lib)) *sim.Proc {
	var lib *socketlib.Lib
	proc := sim.NewProc(th, "api-app", sim.HandlerFunc(func(ctx *sim.Context, msg sim.Message) {
		ctx.Charge(300)
		if lib.HandleEvent(ctx, msg) {
			return
		}
		if msg == "go" {
			start(ctx, lib)
		}
	}), sim.ProcConfig{})
	lib = socketlib.New(proc, syscall, ipc.DefaultCosts())
	return proc
}
