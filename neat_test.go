package neat_test

import (
	"strings"
	"testing"

	"neat"
	"neat/internal/ipc"
	"neat/internal/sim"
	"neat/internal/socketlib"
)

// TestPublicAPIRoundTrip exercises the facade the way the quickstart
// example does: boot both machines, run an echo exchange, verify the
// deterministic outcome.
func TestPublicAPIRoundTrip(t *testing.T) {
	net := neat.NewNetwork(123)
	server := neat.NewServerMachine(net, neat.AMD12)
	client := neat.NewClientMachine(net, 1)

	sys, err := neat.StartNEaT(server, client, neat.SystemConfig{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	clisys, err := neat.StartClientSystem(client, server, 1)
	if err != nil {
		t.Fatal(err)
	}

	var echoed string
	srv := apiApp(server.AppThread(5), sys.SyscallProc(), func(ctx *sim.Context, lib *socketlib.Lib) {
		ln := lib.Listen(ctx, 4000, 8)
		ln.OnAccept = func(ctx *sim.Context, s *socketlib.Socket) {
			s.OnData = func(ctx *sim.Context, data []byte, eof bool) {
				if len(data) > 0 {
					s.Send(ctx, data)
				}
			}
		}
	})
	srv.Deliver("go")
	net.Sim.RunFor(neat.Millisecond)

	cli := apiApp(client.AppThread(4), clisys.SyscallProc(), func(ctx *sim.Context, lib *socketlib.Lib) {
		s := lib.Connect(ctx, neat.IPv4(10, 0, 0, 1), 4000)
		s.OnConnect = func(ctx *sim.Context, err error) {
			if err == nil {
				s.Send(ctx, []byte("roundtrip"))
			}
		}
		s.OnData = func(ctx *sim.Context, data []byte, eof bool) { echoed += string(data) }
	})
	cli.Deliver("go")
	net.Sim.RunFor(50 * neat.Millisecond)

	if echoed != "roundtrip" {
		t.Fatalf("echoed %q", echoed)
	}
	if sys.TotalConns() == 0 {
		t.Fatal("no connection established on the NEaT side")
	}
}

// TestXeonModelAvailable covers the second machine model.
func TestXeonModelAvailable(t *testing.T) {
	net := neat.NewNetwork(5)
	server := neat.NewServerMachine(net, neat.Xeon8x2)
	client := neat.NewClientMachine(net, 1)
	if server.Machine.Core(0).NumThreads() != 2 {
		t.Fatal("Xeon should have 2 hardware threads per core")
	}
	sys, err := neat.StartNEaT(server, client, neat.SystemConfig{
		Replicas: 2, Kind: neat.MultiComponent, TSO: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Replicas()); got != 2 {
		t.Fatalf("replicas=%d", got)
	}
}

// TestSystemConfigValidate covers the consolidated configuration surface:
// the zero value works, and each bad field produces an actionable error.
func TestSystemConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     neat.SystemConfig
		wantErr string // empty = valid
	}{
		{"zero-value-defaults", neat.SystemConfig{}, ""},
		{"full-valid", neat.SystemConfig{Replicas: 8, Kind: neat.MultiComponent,
			FirstCore: 4, TSO: true, Watchdog: true, Observe: true}, ""},
		{"negative-replicas", neat.SystemConfig{Replicas: -1}, "Replicas"},
		{"too-many-replicas", neat.SystemConfig{Replicas: 9}, "queue pairs"},
		{"bad-kind", neat.SystemConfig{Kind: neat.ReplicaKind(7)}, "Kind"},
		{"reserved-core", neat.SystemConfig{FirstCore: 1}, "SYSCALL"},
		{"negative-core", neat.SystemConfig{FirstCore: -2}, "FirstCore"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error mentioning %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

// TestStartNEaTRejectsOversizedLayout checks the machine-aware check:
// replicas that do not fit the core count fail with a helpful error
// instead of panicking inside the testbed.
func TestStartNEaTRejectsOversizedLayout(t *testing.T) {
	net := neat.NewNetwork(9)
	server := neat.NewServerMachine(net, neat.AMD12)
	client := neat.NewClientMachine(net, 1)
	// 6 multi-component replicas need cores 2..13 on a 12-core machine.
	_, err := neat.StartNEaT(server, client, neat.SystemConfig{
		Replicas: 6, Kind: neat.MultiComponent,
	})
	if err == nil {
		t.Fatal("StartNEaT accepted 6 multi-component replicas on 12 cores")
	}
	for _, want := range []string{"12 cores", "fewer replicas"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q lacks %q", err, want)
		}
	}
	// Validation errors surface before Validate-clean machine checks too.
	if _, err := neat.StartNEaT(server, client, neat.SystemConfig{Replicas: -3}); err == nil {
		t.Fatal("StartNEaT accepted negative replicas")
	}
}

// TestObservabilityFacade exercises the re-exported observability API the
// way the examples do: metrics registry, trace breakdown, event timeline.
func TestObservabilityFacade(t *testing.T) {
	net := neat.NewNetwork(123)
	server := neat.NewServerMachine(net, neat.AMD12)
	client := neat.NewClientMachine(net, 1)
	sys, err := neat.StartNEaT(server, client, neat.SystemConfig{Replicas: 2, Observe: true})
	if err != nil {
		t.Fatal(err)
	}
	clisys, err := neat.StartClientSystem(client, server, 1)
	if err != nil {
		t.Fatal(err)
	}
	if clisys.Trace() != nil {
		t.Fatal("client system should be untraced (Observe not set)")
	}
	tr := sys.Trace()
	if tr == nil {
		t.Fatal("Observe: true but System.Trace() is nil")
	}

	srv := apiApp(server.AppThread(5), sys.SyscallProc(), func(ctx *sim.Context, lib *socketlib.Lib) {
		ln := lib.Listen(ctx, 4000, 8)
		ln.OnAccept = func(ctx *sim.Context, s *socketlib.Socket) {
			s.OnData = func(ctx *sim.Context, data []byte, eof bool) {
				if len(data) > 0 {
					s.Send(ctx, data)
				}
			}
		}
	})
	srv.Deliver("go")
	net.Sim.RunFor(neat.Millisecond)
	cli := apiApp(client.AppThread(4), clisys.SyscallProc(), func(ctx *sim.Context, lib *socketlib.Lib) {
		s := lib.Connect(ctx, neat.IPv4(10, 0, 0, 1), 4000)
		s.OnConnect = func(ctx *sim.Context, err error) {
			if err == nil {
				s.Send(ctx, []byte("ping"))
			}
		}
	})
	cli.Deliver("go")
	net.Sim.RunFor(50 * neat.Millisecond)

	reg := sys.Metrics()
	if reg.Counter("nic.rx_frames").Value() == 0 {
		t.Fatal("nic.rx_frames is zero after a TCP exchange")
	}
	if reg.Counter("syscall.listens").Value() == 0 {
		t.Fatal("syscall.listens is zero after Listen")
	}
	if reg.Gauge("core.replicas_active").Value() != 2 {
		t.Fatalf("core.replicas_active=%v", reg.Gauge("core.replicas_active").Value())
	}
	if reg.String() == "" {
		t.Fatal("empty registry dump")
	}

	var bd neat.Breakdown = tr.Breakdown().Filter("amd.")
	if len(bd) == 0 {
		t.Fatal("empty server-side breakdown after traffic")
	}
	var total uint64
	for _, sp := range bd {
		total += sp.Count
	}
	if total == 0 {
		t.Fatal("breakdown spans carry no messages")
	}
	events := tr.Events()
	if len(events) == 0 || !strings.Contains(neat.Timeline(events, "t").String(), "spawn") {
		t.Fatalf("lifecycle timeline lacks the boot spawns: %v", events)
	}
}

// TestClusterConfigValidate covers the declarative topology surface: the
// minimal config builds, and each bad field produces an actionable error.
func TestClusterConfigValidate(t *testing.T) {
	farm := func(name string) []neat.FarmConfig {
		return []neat.FarmConfig{{Name: name, Members: 1}}
	}
	clients := []neat.ClientConfig{{}}
	cases := []struct {
		name    string
		cfg     neat.ClusterConfig
		wantErr string // empty = valid
	}{
		{"minimal", neat.ClusterConfig{Farms: farm("web"), Clients: clients}, ""},
		{"no-farms", neat.ClusterConfig{Clients: clients}, "farm"},
		{"no-clients", neat.ClusterConfig{Farms: farm("web")}, "client"},
		{"negative-workers", neat.ClusterConfig{Farms: farm("web"), Clients: clients,
			PDESWorkers: -1}, "PDESWorkers"},
		{"nondeterministic-steering", neat.ClusterConfig{
			Farms: []neat.FarmConfig{{Name: "web", Members: 2,
				Steering: neat.SteeringConfig{Policy: "least-loaded"}}},
			Clients: clients}, "deterministic"},
		{"ghost-tenant", neat.ClusterConfig{Farms: farm("web"),
			Clients: []neat.ClientConfig{{Tenant: "ghost"}}}, "tenant"},
		{"bad-member-system", neat.ClusterConfig{
			Farms:   []neat.FarmConfig{{Name: "web", Members: 1, System: neat.SystemConfig{Replicas: 9}}},
			Clients: clients}, "queue pairs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

// TestClusterFacadeRoundTrip drives a connection through the whole
// declarative topology: client machine → access link → switch L4 service
// → a farm member's NEaT stack → echo app, with the reply returning
// direct-server-return.
func TestClusterFacadeRoundTrip(t *testing.T) {
	cluster, err := neat.ClusterConfig{
		Farms:   []neat.FarmConfig{{Name: "web", Members: 2}},
		Clients: []neat.ClientConfig{{}},
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	farm := cluster.Farm("web")
	if farm == nil || len(farm.Members) != 2 {
		t.Fatalf("farm missing or wrong size: %+v", farm)
	}

	// An echo server on every member (any of them may get the flow).
	for _, m := range farm.Members {
		srv := apiApp(m.Host.AppThread(5), m.Sys.SyscallProc(), func(ctx *sim.Context, lib *socketlib.Lib) {
			ln := lib.Listen(ctx, 4000, 8)
			ln.OnAccept = func(ctx *sim.Context, s *socketlib.Socket) {
				s.OnData = func(ctx *sim.Context, data []byte, eof bool) {
					if len(data) > 0 {
						s.Send(ctx, data)
					}
				}
			}
		})
		srv.Deliver("go")
	}
	cluster.Sim.RunFor(neat.Millisecond)

	var echoed string
	cl := cluster.Clients[0]
	cli := apiApp(cl.Host.AppThread(4), cl.Sys.SyscallProc(), func(ctx *sim.Context, lib *socketlib.Lib) {
		s := lib.Connect(ctx, farm.VIP, 4000)
		s.OnConnect = func(ctx *sim.Context, err error) {
			if err == nil {
				s.Send(ctx, []byte("roundtrip"))
			}
		}
		s.OnData = func(ctx *sim.Context, data []byte, eof bool) { echoed += string(data) }
	})
	cli.Deliver("go")
	cluster.Sim.RunFor(50 * neat.Millisecond)

	if echoed != "roundtrip" {
		t.Fatalf("echoed %q", echoed)
	}
	if st := farm.Service.Stats(); st.NewFlows == 0 {
		t.Fatalf("the L4 service placed no flows: %+v", st)
	}
	if conns := farm.Members[0].Sys.TotalConns() + farm.Members[1].Sys.TotalConns(); conns == 0 {
		t.Fatal("no connection established on any farm member")
	}
}

// apiApp builds a minimal event-driven app process around a socket lib.
func apiApp(th *sim.HWThread, syscall *sim.Proc, start func(*sim.Context, *socketlib.Lib)) *sim.Proc {
	var lib *socketlib.Lib
	proc := sim.NewProc(th, "api-app", sim.HandlerFunc(func(ctx *sim.Context, msg sim.Message) {
		ctx.Charge(300)
		if lib.HandleEvent(ctx, msg) {
			return
		}
		if msg == "go" {
			start(ctx, lib)
		}
	}), sim.ProcConfig{})
	lib = socketlib.New(proc, syscall, ipc.DefaultCosts())
	return proc
}
