package neat

// Cluster facade: a declarative topology API over the multi-machine
// testbed. A ClusterConfig names machines, links, a switch, server farms
// and tenants; Build compiles it to a running simulated datacenter — one
// store-and-forward switch, one access link per machine, L4 virtual
// services steering each farm's flows across its member machines with the
// same placement policies that steer flows across replicas within a
// machine. The two-machine helpers (NewNetwork, NewServerMachine,
// NewClientMachine, StartNEaT) remain the short path for single-link
// work; a cluster is what you reach for when the question spans machines:
// farm-level autoscaling, cross-machine failover, multi-tenant isolation.

import (
	"fmt"

	"neat/internal/sim"
	"neat/internal/steer"
	"neat/internal/tcpeng"
	"neat/internal/testbed"
	"neat/internal/trace"
)

// Cluster is a running cluster topology (see ClusterConfig.Build).
type Cluster = testbed.Cluster

// Farm is one running server farm: member machines behind a shared VIP.
type Farm = testbed.Farm

// FarmMember is one running server machine of a farm.
type FarmMember = testbed.FarmMember

// FarmEvent is one farm-controller decision (member death, scale events).
type FarmEvent = testbed.FarmEvent

// FarmEventKind enumerates farm-controller lifecycle events.
type FarmEventKind = testbed.FarmEventKind

// Farm controller events.
const (
	FarmMemberDead = testbed.FarmMemberDead
	FarmScaleUp    = testbed.FarmScaleUp
	FarmScaleDown  = testbed.FarmScaleDown
)

// ClusterConfig declares a cluster topology. The zero values of every
// field are a working choice; the minimum viable config is one farm and
// one client:
//
//	cluster, _ := neat.ClusterConfig{
//		Farms:   []neat.FarmConfig{{Name: "web", Members: 2}},
//		Clients: []neat.ClientConfig{{}},
//	}.Build()
//	cluster.Sim.RunFor(10 * neat.Millisecond)
type ClusterConfig struct {
	// Seed drives the deterministic simulation (default 1).
	Seed int64
	// PDESWorkers > 0 runs the cluster under conservative parallel
	// discrete-event simulation with that many workers; 0 is the
	// sequential global event loop. Either way the run is deterministic,
	// and a cluster built from this config behaves identically under
	// both engines.
	PDESWorkers int
	// Switch shapes the one switch of the star topology.
	Switch SwitchConfig
	// Link shapes every machine's access link.
	Link LinkConfig
	// Farms are the server farms (at least one).
	Farms []FarmConfig
	// Clients are the load-generator machines (at least one).
	Clients []ClientConfig
	// Observe attaches a message tracer to the whole cluster before
	// boot (per-hop latency spans via Cluster tracing; serializes PDES
	// execution without changing behavior).
	Observe bool
}

// SwitchConfig shapes the cluster switch.
type SwitchConfig struct {
	// Name labels the switch (default "tor").
	Name string
	// Latency is the store-and-forward delay per frame (default 1 µs).
	Latency Time
}

// LinkConfig shapes the per-machine access links.
type LinkConfig struct {
	// BitsPerSec is the line rate (default 10 Gb/s).
	BitsPerSec int64
	// PropDelay is the propagation delay (default 1 µs).
	PropDelay Time
}

// FarmConfig declares one server farm: Members identical NEaT machines
// behind a shared virtual IP, load-balanced by an L4 service on the
// switch (direct-server-return: the service rewrites only the destination
// MAC, replies bypass it).
type FarmConfig struct {
	// Name labels the farm (required, unique across the cluster).
	Name string
	// Tenant is the owning tenant ("" is the default tenant). A tenant's
	// clients can reach only its own farms' VIPs, and every farm steers
	// with its own placer over its own members — disjoint steering
	// domains and replica sets on shared hardware.
	Tenant string
	// Members is the machine count (required, ≥ 1).
	Members int
	// InitialActive is how many members start in the new-flow rotation
	// (default all). The rest start as draining standby — capacity the
	// autoscaler can activate.
	InitialActive int
	// System configures each member machine's NEaT system, exactly as
	// StartNEaT would interpret it on a two-machine network. The
	// watchdog is always on regardless of System.Watchdog: its
	// heartbeat counters are the farm controller's cross-machine
	// liveness signal.
	System SystemConfig
	// Steering is the farm-level placement policy spreading flows
	// across member machines (default "hash"). It must be deterministic
	// — "hash" or "ring", not "least-loaded" — so that a cluster run is
	// engine-independent.
	Steering SteeringConfig
	// Autoscale tunes the farm controller's watermark autoscaling.
	// Zero watermarks leave the farm at InitialActive members (health
	// monitoring still runs).
	Autoscale AutoscaleConfig
}

// AutoscaleConfig is the farm controller's scaling policy: watermark
// rules over the mean live-connection count per active member.
type AutoscaleConfig struct {
	// Interval between controller evaluations (default 250 µs).
	Interval Time
	// HighWater activates a standby member when the mean exceeds it
	// (0 disables scaling up).
	HighWater int
	// LowWater drains a member when the mean falls below it (0 disables
	// scaling down).
	LowWater int
	// MinActive floors scale-down (default 1).
	MinActive int
	// Cooldown is the minimum time between scale events (default
	// 4×Interval).
	Cooldown Time
}

// ClientConfig declares one load-generator machine.
type ClientConfig struct {
	// Tenant selects which farms this client can reach ("" = default
	// tenant). The tenant must own at least one farm.
	Tenant string
	// Stacks is the client-side replica count (default 1; keep 1 when
	// sequential↔PDES byte-identity matters).
	Stacks int
}

// spec compiles the declarative config to the testbed's resolved form.
func (cfg ClusterConfig) spec() (testbed.ClusterSpec, error) {
	spec := testbed.ClusterSpec{
		Switch: testbed.SwitchSpec{
			Name:    cfg.Switch.Name,
			Latency: cfg.Switch.Latency,
		},
		LinkBitsPerSec: cfg.Link.BitsPerSec,
		LinkPropDelay:  cfg.Link.PropDelay,
	}
	for _, f := range cfg.Farms {
		if err := f.System.Validate(); err != nil {
			return spec, fmt.Errorf("neat: farm %q: %v", f.Name, err)
		}
		nc, err := compileSystem(f.System)
		if err != nil {
			return spec, fmt.Errorf("neat: farm %q: %v", f.Name, err)
		}
		policy, err := steer.ParsePolicy(f.Steering.Policy)
		if err != nil {
			return spec, fmt.Errorf("neat: farm %q steering policy %q: %v; want \"\", \"hash\" or \"ring\"",
				f.Name, f.Steering.Policy, err)
		}
		spec.Farms = append(spec.Farms, testbed.FarmSpec{
			Name:          f.Name,
			Tenant:        f.Tenant,
			Members:       f.Members,
			InitialActive: f.InitialActive,
			NEaT:          nc,
			Steering: steer.Config{
				Policy:     policy,
				RingVNodes: f.Steering.RingVNodes,
			},
			Control: testbed.FarmControlConfig{
				Interval:  f.Autoscale.Interval,
				HighWater: f.Autoscale.HighWater,
				LowWater:  f.Autoscale.LowWater,
				MinActive: f.Autoscale.MinActive,
				Cooldown:  f.Autoscale.Cooldown,
			},
		})
	}
	for _, cl := range cfg.Clients {
		spec.Clients = append(spec.Clients, testbed.ClientSpec{
			Tenant: cl.Tenant,
			Stacks: cl.Stacks,
		})
	}
	return spec, nil
}

// Validate reports the first configuration error, with enough context to
// fix it. Build calls it; call it directly to check a config assembled
// from user input.
func (cfg ClusterConfig) Validate() error {
	if cfg.PDESWorkers < 0 {
		return fmt.Errorf("neat: ClusterConfig.PDESWorkers is %d; want 0 (sequential) or a positive worker count", cfg.PDESWorkers)
	}
	if cfg.Switch.Latency < 0 {
		return fmt.Errorf("neat: ClusterConfig.Switch.Latency is %v; want 0 (default 1 µs) or a positive delay", cfg.Switch.Latency)
	}
	if cfg.Link.BitsPerSec < 0 || cfg.Link.PropDelay < 0 {
		return fmt.Errorf("neat: ClusterConfig.Link is %+v; rate and propagation delay must be 0 (defaults) or positive", cfg.Link)
	}
	spec, err := cfg.spec()
	if err != nil {
		return err
	}
	return spec.Validate()
}

// Build boots the cluster: its own simulator (sequential or PDES per
// PDESWorkers), the switch, every farm member and client machine, the L4
// services, and one controller loop per farm. Drive it through
// Cluster.Sim and observe it through Cluster.Events, Farm.Service and
// each member's System.
func (cfg ClusterConfig) Build() (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spec, err := cfg.spec()
	if err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	s := sim.New(seed)
	if cfg.PDESWorkers > 0 {
		s.EnablePDES(cfg.PDESWorkers)
	}
	if cfg.Observe {
		trace.New().Attach(s)
	}
	return testbed.NewCluster(s, spec)
}

// Testbed is a built two-machine topology: the classic single-link
// testbed, declared instead of hand-assembled.
type Testbed struct {
	Net          *Network
	Server       *Machine
	Client       *Machine
	System       *System // NEaT on the server
	ClientSystem *System
}

// TopologyConfig declares the classic two-machine testbed — one NEaT
// server, one load-generator client, one point-to-point link — as a
// single value. It is the declarative form of the
// NewNetwork/NewServerMachine/NewClientMachine/StartNEaT sequence (which
// remains available for incremental assembly); Build performs exactly
// that sequence, so a migrated caller sees byte-identical simulations.
type TopologyConfig struct {
	// Seed drives the deterministic simulation (default 1).
	Seed int64
	// Server selects the system-under-test machine model (default AMD12).
	Server MachineModel
	// ClientStacks is the client machine's replica count (default 1).
	ClientStacks int
	// System configures the NEaT system on the server.
	System SystemConfig
	// Tune, when non-nil, runs against the server system before the
	// client side boots (scale adjustments, fault arming), so its events
	// land at the same simulated time as a hand-rolled boot sequence.
	Tune func(*System) error
}

// Validate reports the first configuration error. Build calls it.
func (cfg TopologyConfig) Validate() error {
	if cfg.ClientStacks < 0 {
		return fmt.Errorf("neat: TopologyConfig.ClientStacks is %d; want 0 (default 1) or a positive count", cfg.ClientStacks)
	}
	if cfg.Server != AMD12 && cfg.Server != Xeon8x2 {
		return fmt.Errorf("neat: TopologyConfig.Server is %d; want neat.AMD12 or neat.Xeon8x2", cfg.Server)
	}
	return cfg.System.Validate()
}

// Build boots the declared testbed.
func (cfg TopologyConfig) Build() (*Testbed, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	stacks := cfg.ClientStacks
	if stacks == 0 {
		stacks = 1
	}
	net := NewNetwork(seed)
	server := NewServerMachine(net, cfg.Server)
	client := NewClientMachine(net, stacks)
	sys, err := StartNEaT(server, client, cfg.System)
	if err != nil {
		return nil, err
	}
	if cfg.Tune != nil {
		if err := cfg.Tune(sys); err != nil {
			return nil, err
		}
	}
	clisys, err := StartClientSystem(client, server, stacks)
	if err != nil {
		return nil, err
	}
	return &Testbed{Net: net, Server: server, Client: client,
		System: sys, ClientSystem: clisys}, nil
}

// compileSystem translates the facade's per-machine SystemConfig into the
// testbed's NEaTConfig — the same interpretation StartNEaT applies,
// shared so a farm member is exactly a StartNEaT machine behind a switch.
// The caller has run cfg.Validate.
func compileSystem(cfg SystemConfig) (testbed.NEaTConfig, error) {
	if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	if cfg.FirstCore == 0 {
		cfg.FirstCore = 2
	}
	slots := testbed.SingleSlots(cfg.FirstCore, cfg.Replicas)
	if cfg.Kind == MultiComponent {
		slots = testbed.MultiSlots(cfg.FirstCore, cfg.Replicas)
	}
	tcp := tcpeng.DefaultConfig()
	tcp.TSO = cfg.TSO
	tcp.Guard.SynBacklog = cfg.Guard.SynBacklog
	tcp.Guard.HeaderDeadline = cfg.Guard.HeaderDeadline
	tcp.Guard.HeaderMinBytes = cfg.Guard.HeaderMinBytes
	tcp.Guard.IdleDeadline = cfg.Guard.IdleDeadline
	tcp.Guard.MaxConnsPerSource = cfg.Guard.MaxConnsPerSource
	policy, err := steer.ParsePolicy(cfg.Steering.Policy)
	if err != nil {
		return testbed.NEaTConfig{}, err
	}
	nc := testbed.NEaTConfig{
		Kind:    cfg.Kind,
		TCP:     tcp,
		Slots:   slots,
		Syscall: testbed.ThreadLoc{Core: 1},
		Steering: steer.Config{
			Policy:        policy,
			RingVNodes:    cfg.Steering.RingVNodes,
			DrainDeadline: cfg.Steering.DrainDeadline,
		},
	}
	nc.Watchdog.Enabled = cfg.Watchdog
	return nc, nil
}
