// Root benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (§6), plus ablation benches for the design
// choices DESIGN.md calls out. Each benchmark runs the corresponding
// experiment end to end (full simulation) once per b.N iteration and
// reports the headline number as a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates the entire evaluation. See cmd/neat-bench for the
// human-readable report with paper-vs-measured tables.
package neat

import (
	"testing"

	"neat/internal/experiments"
	"neat/internal/sim"
	"neat/internal/stack"
	"neat/internal/testbed"
)

// benchOpts keeps the per-iteration cost sane while staying representative.
var benchOpts = experiments.Options{Quick: true, Seed: 1}

// reportPeak extracts the named series' peak from a figure result.
func reportPeak(b *testing.B, res *experiments.Result, series string, metric string) {
	b.Helper()
	for _, f := range res.Figures {
		for _, s := range f.Series {
			if s.Label == series {
				b.ReportMetric(s.MaxY(), metric)
				return
			}
		}
	}
}

// BenchmarkTable1LinuxTuning regenerates the Linux tuning ladder
// (paper: 184.1 / 186.7 / 224.0 krps).
func BenchmarkTable1LinuxTuning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table1(benchOpts)
		if last := res.Tables[0].Rows[2][1]; last == "" {
			b.Fatal("no result")
		}
	}
}

// BenchmarkFigure4LatencyVsFileSize regenerates the latency/file-size
// sweep on the tuned Linux baseline.
func BenchmarkFigure4LatencyVsFileSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure4(benchOpts)
		if len(res.Figures[0].Series[0].X) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkFigure5ThroughputVsFileSize regenerates the throughput
// saturation sweep (paper: the 10G link saturates past ≈7 KB).
func BenchmarkFigure5ThroughputVsFileSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure5(benchOpts)
		if len(res.Figures[0].Series[1].Y) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkFigure7AMDScaling regenerates the AMD scaling curves
// (paper: NEaT 3x reaches 302 krps, +34.8% over Linux).
func BenchmarkFigure7AMDScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure7(benchOpts)
		reportPeak(b, res, "NEaT 3x", "neat3x-peak-krps")
	}
}

// BenchmarkFigure9XeonMulti regenerates the Xeon multi-component scaling
// (paper: peak 322 krps).
func BenchmarkFigure9XeonMulti(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure9(benchOpts)
		reportPeak(b, res, "Multi 2x", "multi2x-peak-krps")
	}
}

// BenchmarkFigure11XeonSingle regenerates the Xeon single-component
// scaling (paper: NEaT 4x HT sustains 372 krps, +13.4% over Linux's 328).
func BenchmarkFigure11XeonSingle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure11(benchOpts)
		reportPeak(b, res, "NEaT 4x HT", "neat4xht-peak-krps")
	}
}

// BenchmarkFigure12SingleRequest regenerates the 1-request-per-connection
// comparison across five stack configurations.
func BenchmarkFigure12SingleRequest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure12(benchOpts)
		if len(res.Figures[0].Series) != 5 {
			b.Fatal("missing series")
		}
	}
}

// BenchmarkTable2DriverCPU regenerates the driver CPU breakdown
// (paper: 6/60/88/97 % load at 3/45/90/242 web krps).
func BenchmarkTable2DriverCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table2(benchOpts)
		if len(res.Tables[0].Rows) != 4 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkTable3FaultInjection regenerates the fault-injection campaign
// (paper: 53.8% transparent recovery / 46.2% TCP connections lost).
func BenchmarkTable3FaultInjection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table3(benchOpts)
		if len(res.Tables[0].Rows) != 2 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkFigure13StateVsThroughput regenerates the reliability vs
// throughput trade-off table.
func BenchmarkFigure13StateVsThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Figure13(benchOpts)
		if len(res.Tables[0].Rows) != 7 {
			b.Fatal("missing configurations")
		}
	}
}

// ---- Ablations (design choices DESIGN.md calls out) ----

// ablationBed builds a 3-replica NEaT web bed with optional knobs.
func ablationBed(b *testing.B, flowFilters bool) float64 {
	b.Helper()
	n := testbed.New(1)
	server := testbed.DefaultAMDHost(n, 0, 3)
	client := testbed.DefaultClientHost(n, 1, 4)
	sys, err := server.BuildNEaT(client, testbed.NEaTConfig{
		Kind: stack.Single, TCP: defaultTCP(),
		Slots:              testbed.SingleSlots(2, 3),
		Syscall:            testbed.ThreadLoc{Core: 1},
		DisableFlowFilters: !flowFilters,
	})
	if err != nil {
		b.Fatal(err)
	}
	return runWeb(b, n, server, client, sys, 4)
}

// BenchmarkAblationFlowDirectorVsRSS compares exact-filter steering
// against pure RSS hashing (§4): with filters, established connections
// are pinned regardless of RSS reconfiguration; throughput should be
// comparable, making filters' value visible only during scaling events.
func BenchmarkAblationFlowDirectorVsRSS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := ablationBed(b, true)
		without := ablationBed(b, false)
		b.ReportMetric(with, "filters-krps")
		b.ReportMetric(without, "rss-only-krps")
	}
}

// BenchmarkAblationMultiVsSingle compares the two replica layouts at
// equal core budgets (2 cores): one multi-component replica vs two
// single-component replicas — the performance/reliability trade-off of
// Figure 13.
func BenchmarkAblationMultiVsSingle(b *testing.B) {
	run := func(kind stack.Kind, replicas int) float64 {
		n := testbed.New(1)
		server := testbed.DefaultAMDHost(n, 0, replicas)
		client := testbed.DefaultClientHost(n, 1, 4)
		slots := testbed.SingleSlots(2, replicas)
		if kind == stack.Multi {
			slots = testbed.MultiSlots(2, replicas)
		}
		sys, err := server.BuildNEaT(client, testbed.NEaTConfig{
			Kind: kind, TCP: defaultTCP(),
			Slots: slots, Syscall: testbed.ThreadLoc{Core: 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		return runWeb(b, n, server, client, sys, 4)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(stack.Multi, 1), "multi1x-krps")
		b.ReportMetric(run(stack.Single, 2), "single2x-krps")
	}
}

// BenchmarkAblationHyperthreadColocation measures the §6.4 strategy of
// colocating driver+SYSCALL and packing replicas onto sibling threads,
// against dedicating full cores.
func BenchmarkAblationHyperthreadColocation(b *testing.B) {
	run := func(colocate bool) float64 {
		n := testbed.New(1)
		var server *testbed.Host
		var cfg testbed.NEaTConfig
		if colocate {
			server = testbed.DefaultXeonHost(n, 0, 2, testbed.ThreadLoc{Core: 0})
			cfg = testbed.NEaTConfig{
				Kind: stack.Single, TCP: defaultTCP(),
				Slots: [][]testbed.ThreadLoc{
					{{Core: 1, Thread: 0}}, {{Core: 1, Thread: 1}}},
				Syscall: testbed.ThreadLoc{Core: 0, Thread: 1},
			}
		} else {
			server = testbed.DefaultXeonHost(n, 0, 2, testbed.ThreadLoc{Core: 0})
			cfg = testbed.NEaTConfig{
				Kind: stack.Single, TCP: defaultTCP(),
				Slots:   testbed.SingleSlots(2, 2),
				Syscall: testbed.ThreadLoc{Core: 1},
			}
		}
		client := testbed.DefaultClientHost(n, 1, 4)
		sys, err := server.BuildNEaT(client, cfg)
		if err != nil {
			b.Fatal(err)
		}
		return runWeb(b, n, server, client, sys, 4)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(true), "ht-colocated-krps")
		b.ReportMetric(run(false), "dedicated-cores-krps")
	}
}

// BenchmarkSimulatorThroughput measures the raw event-processing rate of
// the discrete-event engine under web load (events/second of host time).
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := testbed.New(1)
		server := testbed.DefaultAMDHost(n, 0, 2)
		client := testbed.DefaultClientHost(n, 1, 2)
		sys, err := server.BuildNEaT(client, testbed.NEaTConfig{
			Kind: stack.Single, TCP: defaultTCP(),
			Slots: testbed.SingleSlots(2, 2), Syscall: testbed.ThreadLoc{Core: 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		runWeb(b, n, server, client, sys, 2)
		b.ReportMetric(float64(n.Sim.EventsRun()), "sim-events")
	}
}

// BenchmarkAblationCheckpointing measures the run-time cost of
// checkpoint-based stateful recovery (§2.1's trade-off): periodic TCP
// snapshots buy connection survival at a throughput price.
func BenchmarkAblationCheckpointing(b *testing.B) {
	run := func(interval sim.Time) float64 {
		n := testbed.New(1)
		// One replica serving more web demand than it has capacity for:
		// the snapshot cycles come straight out of the request rate.
		server := testbed.DefaultAMDHost(n, 0, 1)
		client := testbed.DefaultClientHost(n, 1, 4)
		sys, err := server.BuildNEaT(client, testbed.NEaTConfig{
			Kind: stack.Single, TCP: defaultTCP(),
			Slots:              testbed.SingleSlots(2, 1),
			Syscall:            testbed.ThreadLoc{Core: 1},
			CheckpointInterval: interval,
		})
		if err != nil {
			b.Fatal(err)
		}
		return runWeb(b, n, server, client, sys, 4)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(0), "stateless-krps")
		b.ReportMetric(run(sim.Millisecond), "checkpointed-krps")
	}
}
