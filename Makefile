# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: build test bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench writes the committed benchmark snapshot: micro-benchmark ns/op,
# B/op and allocs/op plus the wall-clock of a full `neat-bench -quick` run
# and the PDES worker-scaling ladder.
BENCH_OUT ?= BENCH_pr6.json

bench:
	$(GO) run ./cmd/neat-benchreport -out $(BENCH_OUT)

# verify is the pre-merge gate: static checks (vet + gofmt cleanliness), a
# full build, the whole test suite, the parallel-sweep + fault-matrix +
# traced-breakdown + steering + PDES determinism tests under the race
# detector (the concurrent experiment runner and the PDES coordinator must
# stay race-free AND byte-identical to a sequential run, with or without
# tracing), and the allocation guard (tracing disabled must keep the
# simulator's scheduling/dispatch allocation budget).
verify:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/experiments -run 'TestParallel|TestFaultMatrix|TestBreakdown|TestSteering|TestPDESDeterminism|TestAttack'
	$(GO) test -race ./internal/bufpool ./internal/nicdev -run 'TestSlabOwnershipProperty|TestBatchedHandoffOwnership' -count=1
	$(GO) test ./internal/sim -run 'TestScheduleZeroAlloc|TestUntracedDispatchAllocBudget|TestTracedDispatchNoExtraAllocs|TestBatchedDeliveryZeroAlloc' -count=1
