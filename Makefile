# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: build test bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench writes the committed benchmark snapshot: micro-benchmark ns/op,
# B/op and allocs/op plus the wall-clock of a full `neat-bench -quick` run,
# the PDES worker-scaling ladder, the cluster connection ladder and the
# connection-scale ladder (the 1M rung rides in as BenchmarkMillionConns).
BENCH_OUT ?= BENCH_pr10.json

bench:
	$(GO) run ./cmd/neat-benchreport -out $(BENCH_OUT)

# verify is the pre-merge gate: static checks (vet + gofmt cleanliness), a
# full build, the whole test suite, the parallel-sweep + fault-matrix +
# traced-breakdown + steering + PDES determinism + cluster determinism
# tests under the race detector (the concurrent experiment runner and the
# PDES coordinator must stay race-free AND byte-identical to a sequential
# run, with or without tracing), the IPC ring semantics under the race
# detector, the allocation guards (scheduling/dispatch and the IPC
# send/recv fast path must stay allocation-free in steady state), and
# the md5 oracle pinning the default single-link campaign outputs: a
# topology-plumbing change that shifts one byte of `neat-bench -quick` or
# `neat-faults -matrix -quick` fails here, not in review. The cluster and
# ipc campaigns are additionally diffed sequential vs PDES 4-worker.
verify:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race -timeout 1800s ./internal/experiments -run 'TestParallel|TestFaultMatrix|TestBreakdown|TestSteering|TestPDESDeterminism|TestAttack|TestClusterDeterminism|TestClusterFailover'
	$(GO) test -race ./internal/bufpool ./internal/nicdev -run 'TestSlabOwnershipProperty|TestBatchedHandoffOwnership' -count=1
	$(GO) test -race ./internal/sim -run 'TestTimerWheelMatchesReferenceScheduler' -count=1
	$(GO) test -race ./internal/ipc -run 'TestIPCRingOverflowStalls|TestIPCInjectOrdering|TestIPCCoalescedRideFIFO|TestIPCDepthHighWater|TestFastPathLatency|TestSlowPathWhenColocated|TestRebindAfterCrash' -count=1
	$(GO) test ./internal/sim -run 'TestScheduleZeroAlloc|TestUntracedDispatchAllocBudget|TestTracedDispatchNoExtraAllocs|TestBatchedDeliveryZeroAlloc|TestTimerArmStopZeroAlloc|TestTimerStatsPendingAndCascades' -count=1
	$(GO) test ./internal/ipc -run 'TestIPCSendRecvZeroAlloc|TestIPCBatchDrainZeroAlloc' -count=1
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/neat-bench ./cmd/neat-bench; \
	$(GO) build -o $$tmp/neat-faults ./cmd/neat-faults; \
	got=$$($$tmp/neat-bench -quick | md5sum | cut -d' ' -f1); \
	if [ "$$got" != "61623b9eb5fb5168fad2f800a29978d7" ]; then \
		echo "md5 oracle: neat-bench -quick output changed ($$got)"; exit 1; fi; \
	got=$$($$tmp/neat-faults -matrix -quick | md5sum | cut -d' ' -f1); \
	if [ "$$got" != "eae3e80b0ca40f84c2ac060885a24f84" ]; then \
		echo "md5 oracle: neat-faults -matrix -quick output changed ($$got)"; exit 1; fi; \
	a=$$($$tmp/neat-bench -cluster -quick | md5sum | cut -d' ' -f1); \
	b=$$($$tmp/neat-bench -cluster -quick -pdes 4 | md5sum | cut -d' ' -f1); \
	if [ "$$a" != "$$b" ]; then \
		echo "cluster campaign diverged between sequential and -pdes 4"; exit 1; fi; \
	a=$$($$tmp/neat-bench -ipc -quick | md5sum | cut -d' ' -f1); \
	b=$$($$tmp/neat-bench -ipc -quick -pdes 4 | md5sum | cut -d' ' -f1); \
	if [ "$$a" != "$$b" ]; then \
		echo "ipc campaign diverged between sequential and -pdes 4"; exit 1; fi; \
	echo "md5 oracle: default outputs unchanged, cluster and ipc engine-identical"
