# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: build test bench verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem

# verify is the pre-merge gate: static checks, a full build, the whole
# test suite, and the parallel-sweep + fault-matrix determinism tests
# under the race detector (the concurrent experiment runner must stay
# race-free AND byte-identical to a sequential run).
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/experiments -run 'TestParallel|TestFaultMatrix'
